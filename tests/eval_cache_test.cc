// Tests for the evaluation fast path: config fingerprints, the sharded
// LRU eval cache, batched app runs, and the end-to-end guarantee that the
// cache and the batching only change wall-clock — never results.
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::sparksim {
namespace {

SparkConf SomeConf(const ConfigSpace& space, uint64_t seed) {
  Rng rng(seed);
  return space.RandomValid(&rng);
}

// ---------------------------------------------------------- fingerprints

TEST(FingerprintTest, ConfFingerprintIsStableAndSensitive) {
  ConfigSpace space(ArmCluster());
  const SparkConf a = SomeConf(space, 1);
  SparkConf b = a;
  EXPECT_EQ(FingerprintConf(a), FingerprintConf(b));
  b.Set(kExecutorCores, a.Get(kExecutorCores) + 1);
  EXPECT_NE(FingerprintConf(a), FingerprintConf(b));
}

TEST(FingerprintTest, SimParamsFingerprintIgnoresNoiseSigma) {
  SimParams a;
  SimParams b;
  b.noise_sigma = 0.0;  // cached metrics are noise-free by construction
  EXPECT_EQ(FingerprintSimParams(a), FingerprintSimParams(b));
  b.split_gb = 0.256;
  EXPECT_NE(FingerprintSimParams(a), FingerprintSimParams(b));
}

TEST(FingerprintTest, ClusterAndQueryFingerprintsDiffer) {
  EXPECT_NE(FingerprintCluster(ArmCluster()), FingerprintCluster(X86Cluster()));
  const auto app = workloads::TpcH();
  EXPECT_NE(FingerprintQuery(app.queries[0]), FingerprintQuery(app.queries[1]));
}

TEST(FingerprintTest, EvalFingerprintSensitiveToDatasize) {
  const uint64_t a = CombineEvalFingerprint(1, 2, 3, 100.0);
  const uint64_t b = CombineEvalFingerprint(1, 2, 3, 200.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, CombineEvalFingerprint(1, 2, 3, 100.0));
}

// -------------------------------------------------------------- EvalCache

TEST(EvalCacheTest, LookupReturnsExactStoredMetrics) {
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 2);
  EvalCache cache(64);
  QueryMetrics m;
  m.name = "q1";
  m.exec_seconds = 123.456789;
  m.gc_seconds = 7.5;
  cache.Insert(42, conf, 100.0, 3, 4, m);
  QueryMetrics out;
  ASSERT_TRUE(cache.Lookup(42, conf, 100.0, 3, 4, &out));
  EXPECT_EQ(out.exec_seconds, m.exec_seconds);  // exact, not approximate
  EXPECT_EQ(out.gc_seconds, m.gc_seconds);
  EXPECT_EQ(out.name, m.name);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(EvalCacheTest, CollisionFallbackMissesInsteadOfReturningWrongValue) {
  ConfigSpace space(ArmCluster());
  const SparkConf a = SomeConf(space, 3);
  const SparkConf b = SomeConf(space, 4);
  EvalCache cache(64);
  QueryMetrics m;
  m.exec_seconds = 1.0;
  // Same fabricated fingerprint, different key material: the lookup must
  // detect the mismatch and report a (counted) collision miss.
  cache.Insert(7, a, 100.0, 1, 2, m);
  QueryMetrics out;
  EXPECT_FALSE(cache.Lookup(7, b, 100.0, 1, 2, &out));
  EXPECT_FALSE(cache.Lookup(7, a, 200.0, 1, 2, &out));
  EXPECT_FALSE(cache.Lookup(7, a, 100.0, 9, 2, &out));
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 0u);
  // The original key still hits.
  EXPECT_TRUE(cache.Lookup(7, a, 100.0, 1, 2, &out));
}

TEST(EvalCacheTest, LruEvictionBoundsResidentEntries) {
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 5);
  // A multiple of the shard count, so every shard has nonzero capacity
  // and all 100 inserts land (smaller caps leave some shards at zero).
  const size_t cap = 32;
  EvalCache cache(cap);
  QueryMetrics m;
  for (uint64_t i = 0; i < 100; ++i) {
    m.exec_seconds = static_cast<double>(i);
    cache.Insert(i, conf, 100.0 + static_cast<double>(i), 1, 2, m);
  }
  EXPECT_LE(cache.size(), cap);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 100u);
  EXPECT_GE(stats.evictions, 100u - cap);
  EXPECT_EQ(stats.entries, cache.size());
}

TEST(EvalCacheTest, ZeroCapacityCacheNeverRetains) {
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 6);
  EvalCache cache(0);
  QueryMetrics m;
  cache.Insert(1, conf, 100.0, 1, 2, m);
  EXPECT_EQ(cache.size(), 0u);
  QueryMetrics out;
  EXPECT_FALSE(cache.Lookup(1, conf, 100.0, 1, 2, &out));
}

TEST(EvalCacheTest, ClearResetsEntriesButKeepsCapacity) {
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 7);
  EvalCache cache(16);
  QueryMetrics m;
  cache.Insert(1, conf, 100.0, 1, 2, m);
  ASSERT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 16u);
}

// ------------------------------------------- app-level (L1) entries

TEST(EvalCacheTest, AppLevelCollisionFallbackMisses) {
  ConfigSpace space(ArmCluster());
  const SparkConf a = SomeConf(space, 8);
  const SparkConf b = SomeConf(space, 9);
  EvalCache cache(64);
  std::vector<QueryMetrics> run(3);
  run[1].exec_seconds = 2.5;
  cache.InsertApp(7, a, 100.0, 11, 22, run.data(), run.size());
  std::vector<QueryMetrics> out(3);
  // Same fabricated fingerprint, different key material or query count.
  EXPECT_FALSE(cache.LookupApp(7, b, 100.0, 11, 22, 3, out.data()));
  EXPECT_FALSE(cache.LookupApp(7, a, 200.0, 11, 22, 3, out.data()));
  EXPECT_FALSE(cache.LookupApp(7, a, 100.0, 12, 22, 3, out.data()));
  EXPECT_FALSE(cache.LookupApp(7, a, 100.0, 11, 22, 2, out.data()));
  ASSERT_TRUE(cache.LookupApp(7, a, 100.0, 11, 22, 3, out.data()));
  EXPECT_EQ(out[1].exec_seconds, 2.5);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.app_misses, 4u);
  EXPECT_EQ(stats.app_hits, 1u);
  EXPECT_EQ(stats.collisions, 4u);
}

TEST(EvalCacheTest, AppEntriesBudgetedByQueryCount) {
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 10);
  // 32 QueryMetrics units across 16 shards: 2 units per shard, so a
  // 2-query run fits per shard but a second one evicts the first.
  EvalCache cache(32);
  std::vector<QueryMetrics> run(2);
  for (uint64_t i = 0; i < 50; ++i) {
    cache.InsertApp(i, conf, 100.0 + static_cast<double>(i), 1, 2, run.data(),
                    run.size());
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.app_insertions, 50u);
  EXPECT_LE(stats.app_entries, 16u);  // one 2-unit entry per 2-unit shard
  EXPECT_GE(stats.app_evictions, 50u - 16u);
  // A run bigger than a whole shard budget is never retained.
  std::vector<QueryMetrics> big(3);
  cache.InsertApp(1000, conf, 999.0, 1, 2, big.data(), big.size());
  std::vector<QueryMetrics> out(3);
  EXPECT_FALSE(cache.LookupApp(1000, conf, 999.0, 1, 2, 3, out.data()));
}

// ------------------------------------------------- simulator + cache

TEST(SimCacheTest, CachedRunsAreBitIdenticalToUncached) {
  const auto app = workloads::TpcH();
  ConfigSpace space(ArmCluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  EvalCache cache(1 << 16);
  ClusterSimulator plain(ArmCluster(), 99);
  ClusterSimulator cached(ArmCluster(), 99);
  cached.set_eval_cache(&cache);

  // Repeat configurations so the cached simulator takes both the miss and
  // the hit path; noise draws advance identically on both sides.
  for (uint64_t s = 0; s < 4; ++s) {
    const SparkConf conf = SomeConf(space, 10 + s % 2);
    const AppRunResult a = *plain.RunAppSubset(app, all, conf, 100.0);
    const AppRunResult b = *cached.RunAppSubset(app, all, conf, 100.0);
    ASSERT_EQ(a.per_query.size(), b.per_query.size());
    EXPECT_EQ(a.total_seconds, b.total_seconds);  // exact double equality
    EXPECT_EQ(a.gc_seconds, b.gc_seconds);
    EXPECT_EQ(a.shuffle_gb, b.shuffle_gb);
    EXPECT_EQ(a.any_oom, b.any_oom);
    for (size_t q = 0; q < a.per_query.size(); ++q) {
      EXPECT_EQ(a.per_query[q].exec_seconds, b.per_query[q].exec_seconds);
      EXPECT_EQ(a.per_query[q].scan_seconds, b.per_query[q].scan_seconds);
      EXPECT_EQ(a.per_query[q].shuffle_seconds,
                b.per_query[q].shuffle_seconds);
      EXPECT_EQ(a.per_query[q].gc_seconds, b.per_query[q].gc_seconds);
    }
  }
  const EvalCacheStats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);  // the repeated confs + noise-free keys hit
  EXPECT_EQ(plain.runs_performed(), cached.runs_performed());
}

TEST(SimCacheTest, HitsOccurAcrossSimulatorSeeds) {
  // The noise factor lives outside the memoized computation, so a second
  // simulator with a *different* seed re-uses the first one's entries.
  const auto app = workloads::HiBenchJoin();
  ConfigSpace space(ArmCluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  const SparkConf conf = SomeConf(space, 11);

  EvalCache cache(1 << 16);
  ClusterSimulator sim_a(ArmCluster(), 1);
  sim_a.set_eval_cache(&cache);
  (void)sim_a.RunAppSubset(app, all, conf, 100.0);
  const uint64_t misses_after_first = cache.stats().misses;

  ClusterSimulator sim_b(ArmCluster(), 2);
  sim_b.set_eval_cache(&cache);
  (void)sim_b.RunAppSubset(app, all, conf, 100.0);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, misses_after_first);  // all hits on the 2nd run
  EXPECT_GE(stats.hits, static_cast<uint64_t>(app.num_queries()));
}

TEST(SimCacheTest, RepeatedSubsetRunServedByOneAppLevelHit) {
  const auto app = workloads::TpcH();
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 13);
  std::vector<int> subset = {1, 3, 5};

  EvalCache cache(1 << 16);
  ClusterSimulator sim(ArmCluster(), 4);
  sim.set_eval_cache(&cache);
  (void)sim.RunAppSubset(app, subset, conf, 100.0);
  EXPECT_EQ(cache.stats().app_hits, 0u);
  (void)sim.RunAppSubset(app, subset, conf, 100.0);
  const EvalCacheStats stats = cache.stats();
  // The whole repeat is one app-level hit; the per-query level is not
  // consulted at all on the warm path.
  EXPECT_EQ(stats.app_hits, 1u);
}

TEST(SimCacheTest, SubsetRunsShareQueryLevelEntries) {
  const auto app = workloads::TpcH();
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 14);
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  EvalCache cache(1 << 16);
  ClusterSimulator sim(ArmCluster(), 4);
  sim.set_eval_cache(&cache);
  (void)sim.RunAppSubset(app, all, conf, 100.0);
  const EvalCacheStats before = cache.stats();
  // A different subset misses at the app level but every query of it is
  // already resident at the query level (the RQA sharing path).
  std::vector<int> subset = {0, 2, 7};
  (void)sim.RunAppSubset(app, subset, conf, 100.0);
  const EvalCacheStats after = cache.stats();
  EXPECT_EQ(after.app_hits, before.app_hits);
  EXPECT_EQ(after.hits - after.app_hits,
            before.hits - before.app_hits + subset.size());
}

TEST(SimCacheTest, MutatedSingleQueryAppIsReFingerprinted) {
  // Rebuilding an app in place must not serve stale app-level entries:
  // the memoized app fingerprint re-validates against the query contents.
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 15);
  SparkSqlApp app = workloads::HiBenchScan();
  ASSERT_EQ(app.num_queries(), 1);
  std::vector<int> all = {0};

  SimParams quiet;
  quiet.noise_sigma = 0.0;  // compare pure model outputs
  EvalCache cache(1 << 16);
  ClusterSimulator sim(ArmCluster(), 4, quiet);
  sim.set_eval_cache(&cache);
  const double first = sim.RunAppSubset(app, all, conf, 100.0)->total_seconds;

  app.queries[0].input_frac *= 2.0;
  const double heavier = sim.RunAppSubset(app, all, conf, 100.0)->total_seconds;
  EXPECT_GT(heavier, first);

  ClusterSimulator plain(ArmCluster(), 4, quiet);
  EXPECT_EQ(heavier, plain.RunAppSubset(app, all, conf, 100.0)->total_seconds);
}

TEST(SimCacheTest, DifferentEnvironmentsDoNotShareEntries) {
  const auto app = workloads::HiBenchJoin();
  ConfigSpace space(ArmCluster());
  const SparkConf conf = SomeConf(space, 12);
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  EvalCache cache(1 << 16);
  ClusterSimulator arm(ArmCluster(), 1);
  arm.set_eval_cache(&cache);
  ClusterSimulator x86(X86Cluster(), 1);
  x86.set_eval_cache(&cache);
  (void)arm.RunAppSubset(app, all, conf, 100.0);
  const uint64_t hits_before = cache.stats().hits;
  (void)x86.RunAppSubset(app, all, conf, 100.0);
  // The x86 run must not hit the arm entries.
  EXPECT_EQ(cache.stats().hits, hits_before);
}

// --------------------------------------------------------- RunAppBatch

TEST(RunAppBatchTest, MatchesSequentialRunsAcrossThreadCounts) {
  const auto app = workloads::TpcH();
  ConfigSpace space(ArmCluster());
  std::vector<int> subset = {0, 2, 4, 5};
  std::vector<SparkConf> confs;
  for (uint64_t s = 0; s < 5; ++s) confs.push_back(SomeConf(space, 20 + s));

  // Reference: sequential RunAppSubset calls, in order.
  ClusterSimulator seq(ArmCluster(), 7);
  std::vector<AppRunResult> expected;
  for (const auto& conf : confs) {
    expected.push_back(*seq.RunAppSubset(app, subset, conf, 300.0));
  }

  for (int threads : {1, 4}) {
    common::ThreadPool::SetGlobalThreads(threads);
    ClusterSimulator sim(ArmCluster(), 7);
    const std::vector<AppRunResult> got =
        *sim.RunAppBatch(app, subset, confs, 300.0);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].total_seconds, expected[k].total_seconds);
      EXPECT_EQ(got[k].gc_seconds, expected[k].gc_seconds);
      ASSERT_EQ(got[k].per_query.size(), expected[k].per_query.size());
      for (size_t q = 0; q < got[k].per_query.size(); ++q) {
        EXPECT_EQ(got[k].per_query[q].exec_seconds,
                  expected[k].per_query[q].exec_seconds);
      }
    }
    EXPECT_EQ(sim.runs_performed(), seq.runs_performed());
  }
  common::ThreadPool::SetGlobalThreads(0);  // restore default
}

TEST(RunAppBatchTest, CachedBatchMatchesUncachedBatch) {
  const auto app = workloads::HiBenchAggregation();
  ConfigSpace space(X86Cluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  // Duplicated confs: the cached batch serves half its grid from memory.
  std::vector<SparkConf> confs;
  for (uint64_t s = 0; s < 6; ++s) confs.push_back(SomeConf(space, 30 + s % 3));

  ClusterSimulator plain(X86Cluster(), 13);
  const std::vector<AppRunResult> a =
      *plain.RunAppBatch(app, all, confs, 200.0);

  EvalCache cache(1 << 16);
  ClusterSimulator cached(X86Cluster(), 13);
  cached.set_eval_cache(&cache);
  const std::vector<AppRunResult> b =
      *cached.RunAppBatch(app, all, confs, 200.0);

  ASSERT_EQ(a.size(), b.size());
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].total_seconds, b[k].total_seconds);
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace locat::sparksim

// ------------------------------------------- end-to-end tuner identity

namespace locat {
namespace {

core::TuningResult TuneOnce(bool with_cache, int threads) {
  common::ThreadPool::SetGlobalThreads(threads);
  sparksim::EvalCache cache(1 << 18);
  sparksim::ClusterSimulator sim(sparksim::ArmCluster(), 5);
  if (with_cache) sim.set_eval_cache(&cache);
  core::TuningSession session(&sim, workloads::HiBenchAggregation());
  core::LocatTuner::Options opts;
  opts.seed = 3;
  opts.n_qcsa = 12;
  opts.n_iicp = 10;
  opts.min_iterations = 4;
  opts.max_iterations = 6;
  core::LocatTuner tuner(opts);
  core::TuningResult result = tuner.Tune(&session, 100.0);
  common::ThreadPool::SetGlobalThreads(0);  // restore default
  return result;
}

TEST(TunerSimCacheTest, OutputBitIdenticalCacheOnOffAcrossThreads) {
  const core::TuningResult reference = TuneOnce(/*with_cache=*/false, 1);
  for (bool with_cache : {false, true}) {
    for (int threads : {1, 4}) {
      if (!with_cache && threads == 1) continue;  // the reference itself
      const core::TuningResult got = TuneOnce(with_cache, threads);
      EXPECT_EQ(got.best_observed_seconds, reference.best_observed_seconds);
      EXPECT_EQ(got.optimization_seconds, reference.optimization_seconds);
      EXPECT_EQ(got.evaluations, reference.evaluations);
      ASSERT_EQ(got.trajectory.size(), reference.trajectory.size());
      for (size_t i = 0; i < got.trajectory.size(); ++i) {
        EXPECT_EQ(got.trajectory[i], reference.trajectory[i]);
      }
      for (int p = 0; p < sparksim::kNumParams; ++p) {
        EXPECT_EQ(got.best_conf.Get(static_cast<sparksim::ParamId>(p)),
                  reference.best_conf.Get(static_cast<sparksim::ParamId>(p)));
      }
    }
  }
}

}  // namespace
}  // namespace locat
