#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace locat::common {
namespace {

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1013;  // deliberately not a multiple of the thread count
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEachCoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  const size_t n = 97;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelForEach(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.ParallelFor(5, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 5u);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  // Per-index slots + fixed-order reduction on the caller: the documented
  // determinism recipe must give identical sums for every pool size.
  const size_t n = 500;
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<double> slots(n);
    pool.ParallelForEach(n, [&](size_t i) {
      slots[i] = static_cast<double>(i) * 1.000000001 + 0.5;
    });
    double sum = 0.0;
    for (double s : slots) sum += s;  // fixed order, off the pool
    return sum;
  };
  const double one = run(1);
  EXPECT_EQ(one, run(2));
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(8));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForEach(64,
                                    [&](size_t i) {
                                      if (i == 33) {
                                        throw std::runtime_error("boom 33");
                                      }
                                    }),
               std::runtime_error);
}

TEST(ThreadPoolTest, LowestBlockExceptionWins) {
  // Both the caller's block (index 0) and a worker block throw; the
  // contract picks the lowest-indexed block deterministically.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(100, [&](size_t begin, size_t) {
      throw std::runtime_error("block@" + std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block@0");
  }
}

TEST(ThreadPoolTest, PoolSurvivesAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelForEach(8, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.ParallelForEach(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A task on the pool that itself calls ParallelFor must not deadlock;
  // the inner loop runs inline on whichever thread owns the outer block.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(40);
  for (auto& h : hits) h.store(0);
  pool.ParallelForEach(4, [&](size_t outer) {
    pool.ParallelForEach(10, [&](size_t inner) {
      hits[outer * 10 + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GlobalPoolIsRebuildable) {
  ThreadPool* before = ThreadPool::Global();
  ASSERT_NE(before, nullptr);
  const int original = before->num_threads();

  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 3);
  std::atomic<int> count{0};
  ThreadPool::Global()->ParallelForEach(11, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 11);

  ThreadPool::SetGlobalThreads(original);
  EXPECT_EQ(ThreadPool::Global()->num_threads(), original);
}

}  // namespace
}  // namespace locat::common
