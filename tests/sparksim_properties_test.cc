// Property-based checks of the analytical simulator: physical invariants
// that must hold over a seeded random sweep of configurations, datasizes
// and both built-in clusters, with noise disabled so the noise-free model
// itself is what is being tested.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::sparksim {
namespace {

SimParams QuietParams() {
  SimParams p;
  p.noise_sigma = 0.0;
  return p;
}

std::vector<int> AllQueries(const SparkSqlApp& app) {
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return all;
}

const std::vector<double>& SweepDatasizes() {
  static const std::vector<double> kSizes = {100.0, 300.0, 500.0};
  return kSizes;
}

// Runtime is monotonically non-increasing in the executor count when no
// query OOMs: adding executors can only add task slots (fewer waves,
// more memory per wave of data). Configurations where the repair rules
// reject the raised count, or where either run hits the OOM cliff, are
// skipped — the cliff is a deliberate non-monotonicity.
TEST(SparksimPropertiesTest, RuntimeNonIncreasingInExecutors) {
  const auto app = workloads::TpcH();
  const std::vector<int> all = AllQueries(app);
  int checked = 0;
  for (const ClusterSpec& cluster : {ArmCluster(), X86Cluster()}) {
    ConfigSpace space(cluster);
    ClusterSimulator sim(cluster, 7, QuietParams());
    Rng rng(101);
    const int lo_e = static_cast<int>(space.lo(kExecutorInstances));
    const int range_hi = static_cast<int>(space.hi(kExecutorInstances));
    for (int trial = 0; trial < 12; ++trial) {
      // Random base, but with the per-executor memory footprint pinned
      // small: a fully random conf saturates the cluster-capacity rule
      // (Repair scales instances to the feasible maximum), leaving the
      // executor axis no valid slack to sweep. The footprint below keeps
      // a wide validity window and stays clear of the OOM cliff, whose
      // stage re-runs are a deliberate non-monotonicity.
      SparkConf base = space.RandomValid(&rng);
      base.Set(kExecutorCores, 1.0);
      base.Set(kExecutorMemory, std::max(space.lo(kExecutorMemory), 8.0));
      base.Set(kExecutorMemoryOverhead, 4096.0);
      base.Set(kMemoryOffHeapEnabled, 0.0);
      base.Set(kMemoryOffHeapSize, space.lo(kMemoryOffHeapSize));
      base.Set(kMemoryFraction, 0.6);
      base.Set(kMemoryStorageFraction, 0.5);
      base.Set(kSqlShufflePartitions, space.hi(kSqlShufflePartitions));
      base.Set(kDefaultParallelism, space.hi(kDefaultParallelism));
      // The window of valid counts is contiguous from the range floor up
      // to the capacity bound; probe its top.
      int hi_e = lo_e;
      for (int e = lo_e + 1; e <= range_hi; ++e) {
        SparkConf probe = base;
        probe.Set(kExecutorInstances, static_cast<double>(e));
        if (!space.Validate(probe).ok()) break;
        hi_e = e;
      }
      const int step = std::max(1, (hi_e - lo_e) / 6);
      for (double ds : SweepDatasizes()) {
        double prev_seconds = -1.0;
        int prev_execs = -1;
        for (int execs = lo_e; execs <= hi_e; execs += step) {
          // Vary only the executor count; skip counts the validity rules
          // reject rather than repairing, which could silently change
          // other parameters.
          SparkConf conf = base;
          conf.Set(kExecutorInstances, static_cast<double>(execs));
          if (!space.Validate(conf).ok()) continue;
          const AppRunResult run = *sim.RunAppSubset(app, all, conf, ds);
          if (run.any_oom) {
            prev_seconds = -1.0;
            continue;
          }
          if (prev_seconds >= 0.0) {
            EXPECT_LE(run.total_seconds, prev_seconds * (1.0 + 1e-9))
                << "cluster=" << cluster.name << " trial=" << trial
                << " ds=" << ds << " execs " << prev_execs << "->" << execs;
            ++checked;
          }
          prev_seconds = run.total_seconds;
          prev_execs = execs;
        }
      }
    }
  }
  // The sweep must actually have exercised the property.
  EXPECT_GT(checked, 50);
}

// Spill, shuffle, GC and runtime are finite and non-negative for every
// valid configuration; runtime is strictly positive.
TEST(SparksimPropertiesTest, MetricsAreFiniteAndNonNegative) {
  const auto app = workloads::TpcH();
  const std::vector<int> all = AllQueries(app);
  for (const ClusterSpec& cluster : {ArmCluster(), X86Cluster()}) {
    ConfigSpace space(cluster);
    ClusterSimulator sim(cluster, 11, QuietParams());
    Rng rng(202);
    for (int trial = 0; trial < 25; ++trial) {
      const SparkConf conf = space.RandomValid(&rng);
      for (double ds : SweepDatasizes()) {
        const AppRunResult run = *sim.RunAppSubset(app, all, conf, ds);
        ASSERT_TRUE(std::isfinite(run.total_seconds));
        EXPECT_GT(run.total_seconds, 0.0);
        ASSERT_TRUE(std::isfinite(run.gc_seconds));
        EXPECT_GE(run.gc_seconds, 0.0);
        ASSERT_TRUE(std::isfinite(run.shuffle_gb));
        EXPECT_GE(run.shuffle_gb, 0.0);
        for (const QueryMetrics& q : run.per_query) {
          ASSERT_TRUE(std::isfinite(q.exec_seconds));
          EXPECT_GT(q.exec_seconds, 0.0);
          ASSERT_TRUE(std::isfinite(q.spill_gb));
          EXPECT_GE(q.spill_gb, 0.0);
          ASSERT_TRUE(std::isfinite(q.oom_severity));
          EXPECT_GE(q.oom_severity, 0.0);
          EXPECT_GE(q.gc_seconds, 0.0);
          EXPECT_LE(q.gc_seconds, q.exec_seconds);
        }
      }
    }
  }
}

// The OOM multiplier honours its cap: runtime is non-decreasing in
// oom_penalty_cap (a larger cap can only let the penalty grow), and an
// OOM-free query is entirely insensitive to the cap.
TEST(SparksimPropertiesTest, OomPenaltyCapIsRespected) {
  const auto app = workloads::TpcH();
  const std::vector<int> all = AllQueries(app);
  const std::vector<double> caps = {1.0, 5.0, 10.0, 100.0};
  ConfigSpace space(X86Cluster());
  Rng rng(303);
  int oom_cases = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const SparkConf conf = space.RandomValid(&rng);
    double prev_total = -1.0;
    bool saw_oom = false;
    for (double cap : caps) {
      SimParams p = QuietParams();
      p.oom_penalty_cap = cap;
      ClusterSimulator sim(X86Cluster(), 7, p);
      const AppRunResult run = *sim.RunAppSubset(app, all, conf, 300.0);
      saw_oom = saw_oom || run.any_oom;
      if (prev_total >= 0.0) {
        EXPECT_GE(run.total_seconds, prev_total * (1.0 - 1e-9))
            << "trial=" << trial << " cap=" << cap;
      }
      prev_total = run.total_seconds;
    }
    if (saw_oom) ++oom_cases;
  }
  // The sweep must include genuine OOM configurations, or the cap was
  // never actually exercised.
  EXPECT_GT(oom_cases, 0);
}

// The RQA bet: running a subset of the queries never costs more than the
// full application — otherwise QCSA's "reduced" runs wouldn't reduce
// anything and the optimization-time accounting would be meaningless.
TEST(SparksimPropertiesTest, SubsetRuntimeNeverExceedsFullApp) {
  const auto app = workloads::TpcH();
  const std::vector<int> all = AllQueries(app);
  ConfigSpace space(ArmCluster());
  ClusterSimulator sim(ArmCluster(), 13, QuietParams());
  Rng rng(404);
  for (int trial = 0; trial < 15; ++trial) {
    const SparkConf conf = space.RandomValid(&rng);
    for (double ds : SweepDatasizes()) {
      const AppRunResult full = *sim.RunAppSubset(app, all, conf, ds);
      // A few representative subsets, including singletons and a prefix.
      const std::vector<std::vector<int>> subsets = {
          {0}, {static_cast<int>(all.size()) - 1}, {0, 1, 2}, {1, 3, 5}};
      for (const auto& subset : subsets) {
        const AppRunResult part = *sim.RunAppSubset(app, subset, conf, ds);
        EXPECT_LE(part.total_seconds, full.total_seconds * (1.0 + 1e-9))
            << "trial=" << trial << " ds=" << ds;
        EXPECT_EQ(part.per_query.size(), subset.size());
      }
    }
  }
}

// With noise off the model is a pure function: re-running the same
// (conf, datasize) yields bit-identical results regardless of how many
// unrelated runs happened in between.
TEST(SparksimPropertiesTest, NoiseFreeModelIsAPureFunction) {
  const auto app = workloads::HiBenchJoin();
  const std::vector<int> all = AllQueries(app);
  ConfigSpace space(X86Cluster());
  ClusterSimulator sim(X86Cluster(), 17, QuietParams());
  Rng rng(505);
  const SparkConf conf = space.RandomValid(&rng);
  const AppRunResult first = *sim.RunAppSubset(app, all, conf, 200.0);
  for (int i = 0; i < 3; ++i) {  // interleave unrelated work
    (void)*sim.RunAppSubset(app, all, space.RandomValid(&rng), 300.0);
  }
  const AppRunResult again = *sim.RunAppSubset(app, all, conf, 200.0);
  EXPECT_EQ(first.total_seconds, again.total_seconds);
  EXPECT_EQ(first.gc_seconds, again.gc_seconds);
  EXPECT_EQ(first.shuffle_gb, again.shuffle_gb);
}

}  // namespace
}  // namespace locat::sparksim
