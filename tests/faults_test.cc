// Fault-injection tests: the deterministic fault schedule, its cache
// interaction, the censored-cost machinery, and the failure-aware tuner
// end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/retry_policy.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/eval_cache.h"
#include "sparksim/faults.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::sparksim {
namespace {

SparkConf SweepConf(const ConfigSpace& space, uint64_t salt) {
  Rng rng(salt);
  return space.RandomValid(&rng);
}

/// A plan that kills every run at its first query: severity bound 0 is
/// always reached and the kill coin always lands. Used to probe the
/// failed-run paths without depending on preset probabilities.
FaultSpec KillCertainSpec(uint64_t seed) {
  FaultSpec spec;
  spec.level = FaultLevel::kLight;  // any non-off level enables the plan
  spec.seed = seed;
  spec.kill_severity = 0.0;
  spec.kill_prob = 1.0;
  return spec;
}

// ------------------------------------------------------------- FaultSpec

TEST(FaultSpecTest, PresetsAndFromName) {
  EXPECT_FALSE(FaultSpec::Off().enabled());
  EXPECT_TRUE(FaultSpec::Light(1).enabled());
  EXPECT_TRUE(FaultSpec::Heavy(1).enabled());
  // Heavy is strictly more hostile than light on every axis it shares.
  const FaultSpec light = FaultSpec::Light(0);
  const FaultSpec heavy = FaultSpec::Heavy(0);
  EXPECT_GT(heavy.executor_loss_prob, light.executor_loss_prob);
  EXPECT_GT(heavy.straggler_prob, light.straggler_prob);
  EXPECT_GT(heavy.fetch_failure_prob, light.fetch_failure_prob);
  EXPECT_LT(heavy.kill_severity, light.kill_severity);

  EXPECT_TRUE(FaultSpec::FromName("off", 3).ok());
  EXPECT_FALSE(FaultSpec::FromName("off", 3)->enabled());
  EXPECT_EQ(FaultSpec::FromName("light", 3)->seed, 3u);
  EXPECT_EQ(FaultSpec::FromName("heavy", 3)->level, FaultLevel::kHeavy);
  EXPECT_EQ(FaultSpec::FromName("bogus", 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecTest, FingerprintSeparatesPlans) {
  EXPECT_EQ(FingerprintFaultSpec(FaultSpec::Off()), 0u);
  const uint64_t light1 = FingerprintFaultSpec(FaultSpec::Light(1));
  const uint64_t light2 = FingerprintFaultSpec(FaultSpec::Light(2));
  const uint64_t heavy1 = FingerprintFaultSpec(FaultSpec::Heavy(1));
  EXPECT_NE(light1, 0u);
  EXPECT_NE(light1, light2);  // seed is part of the plan identity
  EXPECT_NE(light1, heavy1);
  // Folding a zero fingerprint must keep the key space untouched.
  EXPECT_EQ(CombineFaultFingerprint(0xabcdefULL, 0), 0xabcdefULL);
  EXPECT_NE(CombineFaultFingerprint(0xabcdefULL, light1), 0xabcdefULL);
}

TEST(FaultSpecTest, DrawCountIsOutcomeIndependent) {
  // The draws consumed per run depend only on the query count.
  EXPECT_EQ(FaultDrawCount(0), kFaultDrawsPerRun);
  EXPECT_EQ(FaultDrawCount(5), kFaultDrawsPerRun + 5 * kFaultDrawsPerQuery);
  Rng a(7), b(7);
  std::vector<double> d1(FaultDrawCount(4)), d2(FaultDrawCount(4));
  DrawRunFaults(&a, 4, d1.data());
  DrawRunFaults(&b, 4, d2.data());
  EXPECT_EQ(d1, d2);
}

// ----------------------------------------------------------- RetryPolicy

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  common::RetryPolicy p;  // 30 s initial, x2, 600 s cap
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(0), 30.0);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 60.0);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 120.0);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(10), 600.0);  // capped
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(-1), 0.0);
  common::RetryPolicy off;
  off.initial_backoff_seconds = 0.0;
  EXPECT_DOUBLE_EQ(off.BackoffSeconds(3), 0.0);
}

TEST(CensoredObjectiveTest, ImputesWorstSeenTimesMargin) {
  // Nothing observed yet: the margin alone keeps the cost positive.
  EXPECT_DOUBLE_EQ(core::CensoredObjective(0.0, 0.0, 2.0), 2.0);
  // The censored cost is at least the partial time and at least the worst
  // completed run, scaled by the margin.
  EXPECT_DOUBLE_EQ(core::CensoredObjective(100.0, 0.0, 2.0), 200.0);
  EXPECT_DOUBLE_EQ(core::CensoredObjective(100.0, 150.0, 2.0), 300.0);
  EXPECT_DOUBLE_EQ(core::CensoredObjective(100.0, 40.0, 1.5), 150.0);
}

// ----------------------------------------------- deterministic schedule

TEST(FaultDeterminismTest, SameSeedSameScheduleAcrossThreadsAndCache) {
  const auto app = workloads::TpcH();
  ConfigSpace space(X86Cluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  // Reference: single-threaded, no cache.
  std::vector<AppRunResult> expected;
  {
    common::ThreadPool::SetGlobalThreads(1);
    ClusterSimulator sim(X86Cluster(), 42);
    sim.set_faults(FaultSpec::Heavy(7));
    for (uint64_t s = 0; s < 10; ++s) {
      expected.push_back(
          *sim.RunAppSubset(app, all, SweepConf(space, s), 200.0));
    }
  }
  ASSERT_EQ(expected.size(), 10u);

  for (int threads : {1, 4, 8}) {
    for (bool use_cache : {false, true}) {
      common::ThreadPool::SetGlobalThreads(threads);
      EvalCache cache(1 << 16);
      ClusterSimulator sim(X86Cluster(), 42);
      sim.set_faults(FaultSpec::Heavy(7));
      if (use_cache) sim.set_eval_cache(&cache);
      for (uint64_t s = 0; s < 10; ++s) {
        const AppRunResult got =
            *sim.RunAppSubset(app, all, SweepConf(space, s), 200.0);
        const AppRunResult& want = expected[s];
        ASSERT_EQ(got.failed, want.failed)
            << "threads=" << threads << " cache=" << use_cache << " run=" << s;
        EXPECT_EQ(got.failed_at_query, want.failed_at_query);
        EXPECT_EQ(got.retries, want.retries);
        EXPECT_EQ(got.lost_executors, want.lost_executors);
        EXPECT_EQ(got.total_seconds, want.total_seconds);  // bit-identical
        ASSERT_EQ(got.per_query.size(), want.per_query.size());
        for (size_t q = 0; q < got.per_query.size(); ++q) {
          EXPECT_EQ(got.per_query[q].exec_seconds,
                    want.per_query[q].exec_seconds);
          EXPECT_EQ(got.per_query[q].failed, want.per_query[q].failed);
          EXPECT_EQ(got.per_query[q].retries, want.per_query[q].retries);
        }
      }
    }
  }
  common::ThreadPool::SetGlobalThreads(0);  // restore default
}

TEST(FaultDeterminismTest, HeavyPlanActuallyInjectsAndKills) {
  const auto app = workloads::TpcH();
  ConfigSpace space(X86Cluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  ClusterSimulator sim(X86Cluster(), 42);
  sim.set_faults(FaultSpec::Heavy(7));
  int failed = 0;
  for (uint64_t s = 0; s < 40; ++s) {
    const AppRunResult run =
        *sim.RunAppSubset(app, all, SweepConf(space, s), 200.0);
    if (run.failed) {
      ++failed;
      EXPECT_EQ(run.fail_reason, "oom_kill");
      EXPECT_GE(run.failed_at_query, 0);
      ASSERT_FALSE(run.per_query.empty());
      EXPECT_TRUE(run.per_query.back().failed);
    }
  }
  const FaultStats& fs = sim.fault_stats();
  EXPECT_EQ(fs.failed_runs, static_cast<uint64_t>(failed));
  EXPECT_EQ(fs.app_kills, static_cast<uint64_t>(failed));
  // A heavy plan over 40 random confs must visibly perturb the cluster.
  EXPECT_GT(fs.executor_losses + fs.stragglers + fs.fetch_failures, 0u);
}

TEST(FaultDeterminismTest, FaultsOffIsByteIdenticalToNoFaultSetup) {
  const auto app = workloads::HiBenchJoin();
  ConfigSpace space(ArmCluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  ClusterSimulator plain(ArmCluster(), 5);
  ClusterSimulator off(ArmCluster(), 5);
  off.set_faults(FaultSpec::Off());
  for (uint64_t s = 0; s < 5; ++s) {
    const SparkConf conf = SweepConf(space, 100 + s);
    const AppRunResult a = *plain.RunAppSubset(app, all, conf, 150.0);
    const AppRunResult b = *off.RunAppSubset(app, all, conf, 150.0);
    EXPECT_EQ(a.total_seconds, b.total_seconds);
    EXPECT_EQ(a.gc_seconds, b.gc_seconds);
    EXPECT_FALSE(b.failed);
  }
  EXPECT_EQ(off.fault_stats().failed_runs, 0u);
}

TEST(FaultDeterminismTest, BatchMatchesSequentialUnderFaults) {
  const auto app = workloads::TpcH();
  ConfigSpace space(X86Cluster());
  std::vector<int> subset = {0, 2, 4, 5, 9};
  std::vector<SparkConf> confs;
  for (uint64_t s = 0; s < 6; ++s) confs.push_back(SweepConf(space, 40 + s));

  ClusterSimulator seq(X86Cluster(), 11);
  seq.set_faults(FaultSpec::Heavy(3));
  std::vector<AppRunResult> expected;
  for (const auto& conf : confs) {
    expected.push_back(*seq.RunAppSubset(app, subset, conf, 300.0));
  }

  ClusterSimulator batch(X86Cluster(), 11);
  batch.set_faults(FaultSpec::Heavy(3));
  const std::vector<AppRunResult> got =
      *batch.RunAppBatch(app, subset, confs, 300.0);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].total_seconds, expected[k].total_seconds);
    EXPECT_EQ(got[k].failed, expected[k].failed);
    EXPECT_EQ(got[k].failed_at_query, expected[k].failed_at_query);
  }
  EXPECT_EQ(batch.fault_stats().failed_runs, seq.fault_stats().failed_runs);
}

// ------------------------------------------------------ cache interaction

TEST(FaultCacheTest, KilledRunsNeverInsertIntoTheCache) {
  const auto app = workloads::TpcH();
  ConfigSpace space(X86Cluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  EvalCache cache(1 << 16);
  ClusterSimulator sim(X86Cluster(), 9);
  sim.set_faults(KillCertainSpec(1));
  sim.set_eval_cache(&cache);
  for (uint64_t s = 0; s < 3; ++s) {
    const AppRunResult run =
        *sim.RunAppSubset(app, all, SweepConf(space, s), 200.0);
    ASSERT_TRUE(run.failed);
    EXPECT_EQ(run.failed_at_query, 0);  // killed at the very first query
  }
  // Every run died, so neither the app level nor the query level may hold
  // an entry: a later hit would replay a "success" that never happened.
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().app_insertions, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FaultCacheTest, FaultedPlanNeverServesCachedFaultFreeSuccess) {
  // Regression: the cache key must include the fault-plan fingerprint.
  // Without it, a faults-off simulator would warm the cache and a faulted
  // simulator sharing it would be served the stale success instead of
  // injecting its kill.
  const auto app = workloads::TpcH();
  ConfigSpace space(X86Cluster());
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  const SparkConf conf = SweepConf(space, 17);

  EvalCache cache(1 << 16);
  ClusterSimulator warm(X86Cluster(), 3);
  warm.set_eval_cache(&cache);
  ASSERT_FALSE((*warm.RunAppSubset(app, all, conf, 200.0)).failed);
  const EvalCacheStats warmed = cache.stats();
  EXPECT_GT(warmed.insertions, 0u);

  ClusterSimulator faulted(X86Cluster(), 3);
  faulted.set_faults(KillCertainSpec(4));
  faulted.set_eval_cache(&cache);
  const AppRunResult run = *faulted.RunAppSubset(app, all, conf, 200.0);
  EXPECT_TRUE(run.failed);  // the stale success must not mask the kill
  const EvalCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, warmed.hits);  // zero hits across the plan boundary
  EXPECT_EQ(after.app_hits, warmed.app_hits);
}

// -------------------------------------------------- failure-aware tuning

core::LocatTuner::Options TinyTunerOptions() {
  core::LocatTuner::Options opts;
  opts.n_qcsa = 8;
  opts.n_iicp = 6;
  opts.lhs_init = 2;
  opts.min_iterations = 3;
  opts.max_iterations = 6;
  opts.warm_iterations = 3;
  opts.candidates = 60;
  opts.seed = 9;
  return opts;
}

TEST(FailureAwareTuningTest, EvaluateReturnsFailureAndChargesPartialTime) {
  const auto app = workloads::TpcH();
  ClusterSimulator sim(X86Cluster(), 12);
  sim.set_faults(KillCertainSpec(5));
  core::TuningSession session(&sim, app);
  const SparkConf conf =
      session.space().Repair(session.space().DefaultConf());
  const StatusOr<core::EvalRecord> rec = session.Evaluate(conf, 100.0);
  ASSERT_TRUE(rec.ok());  // a kill is a result, not a Status error
  EXPECT_TRUE(rec->failed);
  EXPECT_EQ(rec->fail_reason, "oom_kill");
  EXPECT_GT(rec->app_seconds, 0.0);  // partial time is still charged
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), rec->app_seconds);
}

TEST(FailureAwareTuningTest, InvalidArgumentsComeBackAsStatus) {
  const auto app = workloads::TpcH();
  ClusterSimulator sim(X86Cluster(), 13);
  core::TuningSession session(&sim, app);
  const SparkConf conf =
      session.space().Repair(session.space().DefaultConf());
  EXPECT_EQ(session.Evaluate(conf, -5.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Evaluate(conf, std::nan("")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.EvaluateSubset(conf, 100.0, {0, 99}).status().code(),
            StatusCode::kOutOfRange);
  // Nothing was charged for rejected requests.
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), 0.0);
  EXPECT_EQ(session.evaluations(), 0);
}

TEST(FailureAwareTuningTest, ChargePenaltySecondsFeedsTheMeter) {
  const auto app = workloads::HiBenchScan();
  ClusterSimulator sim(X86Cluster(), 14);
  core::TuningSession session(&sim, app);
  session.ChargePenaltySeconds(120.0);
  session.ChargePenaltySeconds(-5.0);  // ignored
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), 120.0);
  EXPECT_EQ(session.evaluations(), 0);  // a penalty is not an evaluation
}

TEST(FailureAwareTuningTest, TunerConvergesDespiteInjectedFailures) {
  const auto app = workloads::TpcH();

  // Fault-free reference recommendation.
  ClusterSimulator clean_sim(X86Cluster(), 55);
  core::TuningSession clean_session(&clean_sim, app);
  core::LocatTuner clean_tuner(TinyTunerOptions());
  const core::TuningResult clean = clean_tuner.Tune(&clean_session, 200.0);
  EXPECT_EQ(clean.failed_evaluations, 0);

  // Same tuner under a heavy fault plan.
  ClusterSimulator sim(X86Cluster(), 55);
  sim.set_faults(FaultSpec::Heavy(7));
  core::TuningSession session(&sim, app);
  core::LocatTuner tuner(TinyTunerOptions());
  const core::TuningResult faulted = tuner.Tune(&session, 200.0);

  EXPECT_GT(sim.fault_stats().failed_runs, 0u);
  EXPECT_GE(tuner.failed_evaluations(), 1);
  EXPECT_EQ(faulted.failed_evaluations, tuner.failed_evaluations());

  // Convergence: judged on the noise- and fault-free model, the faulted
  // recommendation stays in the same quality band as the clean one.
  SimParams quiet;
  quiet.noise_sigma = 0.0;
  ClusterSimulator judge(X86Cluster(), 1, quiet);
  const double clean_cost = judge.RunApp(app, clean.best_conf, 200.0).total_seconds;
  const double faulted_cost =
      judge.RunApp(app, faulted.best_conf, 200.0).total_seconds;
  EXPECT_LT(faulted_cost, 1.5 * clean_cost);

  // And it still beats the defaults despite the failures.
  const double default_cost =
      judge
          .RunApp(app,
                  session.space().Repair(session.space().DefaultConf()),
                  200.0)
          .total_seconds;
  EXPECT_LT(faulted_cost, default_cost);
}

TEST(FailureAwareTuningTest, RetryBudgetChargesBackoffToTheMeter) {
  // With a kill-certain plan every evaluation fails, retries included, so
  // each charged evaluation pays (max_retries + 1) runs plus the backoff.
  const auto app = workloads::HiBenchScan();
  ClusterSimulator sim(X86Cluster(), 16);
  sim.set_faults(KillCertainSpec(6));
  core::TuningSession session(&sim, app);
  core::LocatTuner::Options opts = TinyTunerOptions();
  opts.max_iterations = 3;
  opts.retry.max_retries = 2;
  opts.retry.initial_backoff_seconds = 30.0;
  core::LocatTuner tuner(opts);
  const core::TuningResult result = tuner.Tune(&session, 100.0);
  EXPECT_GE(result.failed_evaluations, 1);
  // Backoff seconds 30 + 60 appear in the meter for each retried eval.
  EXPECT_GE(session.optimization_seconds(), 90.0);
  // Every evaluation kept failing: the tuner still terminates and reports
  // a (censored) result rather than spinning.
  EXPECT_GT(session.evaluations(), 0);
}

TEST(FailureAwareTuningTest, IdenticalFaultedTunesAreBitIdentical) {
  const auto app = workloads::HiBenchAggregation();
  auto run_once = [&]() {
    ClusterSimulator sim(X86Cluster(), 21);
    sim.set_faults(FaultSpec::Heavy(7));
    core::TuningSession session(&sim, app);
    core::LocatTuner tuner(TinyTunerOptions());
    return tuner.Tune(&session, 150.0);
  };
  const core::TuningResult a = run_once();
  const core::TuningResult b = run_once();
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.failed_evaluations, b.failed_evaluations);
  EXPECT_DOUBLE_EQ(a.best_observed_seconds, b.best_observed_seconds);
  EXPECT_DOUBLE_EQ(a.optimization_seconds, b.optimization_seconds);
  EXPECT_TRUE(a.best_conf == b.best_conf);
}

}  // namespace
}  // namespace locat::sparksim
