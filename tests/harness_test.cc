#include <cstdio>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace locat::harness {
namespace {

std::string TempCachePath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("locat_test_cache_" + tag + ".csv"))
      .string();
}

TEST(CellResultTest, SerializeRoundTrip) {
  CellResult r;
  r.optimization_seconds = 1234.5;
  r.best_app_seconds = 678.9;
  r.default_app_seconds = 9999.0;
  r.gc_seconds = 12.5;
  r.csq_seconds = 400.0;
  r.ciq_seconds = 278.9;
  r.evaluations = 42;
  CellResult back;
  ASSERT_TRUE(CellResult::Deserialize(r.Serialize(), &back));
  EXPECT_DOUBLE_EQ(back.optimization_seconds, 1234.5);
  EXPECT_DOUBLE_EQ(back.best_app_seconds, 678.9);
  EXPECT_DOUBLE_EQ(back.ciq_seconds, 278.9);
  EXPECT_EQ(back.evaluations, 42);
}

TEST(CellResultTest, DeserializeRejectsGarbage) {
  CellResult out;
  EXPECT_FALSE(CellResult::Deserialize("not,a,result", &out));
}

TEST(CellSpecTest, KeyIncludesEveryField) {
  CellSpec a{"LOCAT", "TPC-DS", "x86", 300.0, 0};
  CellSpec b = a;
  EXPECT_EQ(a.Key(), b.Key());
  b.datasize_gb = 400.0;
  EXPECT_NE(a.Key(), b.Key());
  b = a;
  b.tuner = "DAC";
  EXPECT_NE(a.Key(), b.Key());
  b = a;
  b.seed = 1;
  EXPECT_NE(a.Key(), b.Key());
}

TEST(MakeTunerTest, SupportsAllNames) {
  EXPECT_EQ(MakeTuner("LOCAT", 0)->name(), "LOCAT");
  EXPECT_EQ(MakeTuner("LOCAT-AP", 0)->name(), "LOCAT-AP");
  EXPECT_EQ(MakeTuner("Tuneful", 0)->name(), "Tuneful");
  EXPECT_EQ(MakeTuner("DAC+QIT", 0)->name(), "DAC+QIT");
  EXPECT_EQ(MakeTuner("QTune+QCSA", 0)->name(), "QTune+QCSA");
  EXPECT_EQ(MakeTuner("GBO-RL+IICP", 0)->name(), "GBO-RL+IICP");
}

TEST(MakeAppClusterTest, Factories) {
  EXPECT_EQ(MakeApp("TPC-DS").num_queries(), 104);
  EXPECT_EQ(MakeApp("Scan").num_queries(), 1);
  EXPECT_EQ(MakeCluster("arm").name, "arm4");
  EXPECT_EQ(MakeCluster("x86").name, "x86_8");
  EXPECT_EQ(SotaTunerNames().size(), 4u);
}

TEST(ExperimentRunnerTest, CanonicalCsqMatchesPaperForTpcDs) {
  ExperimentRunner runner(TempCachePath("csq"));
  const std::vector<int> csq = runner.CanonicalCsq("TPC-DS", "x86");
  // The paper keeps 23 of 104 queries (Section 5.2); allow small slack for
  // the stochastic tertile boundary.
  EXPECT_GE(csq.size(), 18u);
  EXPECT_LE(csq.size(), 30u);
  // Q72 must be in the configuration-sensitive set.
  const auto app = MakeApp("TPC-DS");
  const int q72 = app.IndexOf("q72");
  EXPECT_NE(std::find(csq.begin(), csq.end(), q72), csq.end());
  // Q04 (long but insensitive) must not.
  const int q04 = app.IndexOf("q04");
  EXPECT_EQ(std::find(csq.begin(), csq.end(), q04), csq.end());
}

TEST(ExperimentRunnerTest, CachePersistsAcrossInstances) {
  const std::string path = TempCachePath("persist");
  std::remove(path.c_str());
  CellSpec spec{"Random", "Scan", "x86", 100.0, 0};
  CellResult first;
  {
    ExperimentRunner runner(path);
    first = runner.Run(spec);
    runner.Save();
  }
  ExperimentRunner reloaded(path);
  const CellResult second = reloaded.Run(spec);
  EXPECT_DOUBLE_EQ(first.optimization_seconds, second.optimization_seconds);
  EXPECT_DOUBLE_EQ(first.best_app_seconds, second.best_app_seconds);
  std::remove(path.c_str());
}

TEST(ExperimentRunnerTest, RunAllReturnsInInputOrder) {
  const std::string path = TempCachePath("order");
  std::remove(path.c_str());
  ExperimentRunner runner(path);
  std::vector<CellSpec> specs = {
      {"Random", "Scan", "x86", 100.0, 0},
      {"Random", "Scan", "x86", 200.0, 0},
  };
  const auto results = runner.RunAll(specs, 2);
  ASSERT_EQ(results.size(), 2u);
  // The 200 GB cell takes longer in simulated time than the 100 GB one.
  EXPECT_GT(results[1].default_app_seconds, results[0].default_app_seconds);
  // Re-running hits the cache and returns identical numbers.
  const auto again = runner.RunAll(specs, 1);
  EXPECT_DOUBLE_EQ(again[0].best_app_seconds, results[0].best_app_seconds);
  std::remove(path.c_str());
}

TEST(ExperimentRunnerTest, CellResultFieldsAreConsistent) {
  const std::string path = TempCachePath("fields");
  std::remove(path.c_str());
  ExperimentRunner runner(path);
  const CellResult r = runner.Run({"Random", "TPC-H", "x86", 100.0, 0});
  EXPECT_GT(r.optimization_seconds, 0.0);
  EXPECT_GT(r.best_app_seconds, 0.0);
  EXPECT_GT(r.default_app_seconds, r.best_app_seconds);
  EXPECT_GT(r.evaluations, 0);
  // CSQ + CIQ is the per-query total (no submit overhead), so below the
  // full app time.
  EXPECT_LE(r.csq_seconds + r.ciq_seconds, r.best_app_seconds * 1.3);
  EXPECT_GT(r.csq_seconds, 0.0);
  std::remove(path.c_str());
}

TEST(ExperimentRunnerTest, FindAndInsertResult) {
  const std::string path = TempCachePath("findinsert");
  std::remove(path.c_str());
  ExperimentRunner runner(path);
  CellSpec spec{"Random", "Scan", "x86", 100.0, 7};
  EXPECT_FALSE(runner.Find(spec, nullptr));
  CellResult result;
  result.best_app_seconds = 123.0;
  runner.InsertResult(spec, result);
  CellResult out;
  ASSERT_TRUE(runner.Find(spec, &out));
  EXPECT_DOUBLE_EQ(out.best_app_seconds, 123.0);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(ExperimentRunnerTest, ConcurrentSavesMergeWithoutLosingRows) {
  // Two runners share one results.csv: each computes a different cell and
  // saves concurrently. The advisory lock + merge + atomic rename must
  // preserve both rows regardless of who wins the race.
  const std::string path = TempCachePath("race");
  std::remove(path.c_str());
  const CellSpec spec_a{"Random", "Scan", "x86", 100.0, 0};
  const CellSpec spec_b{"Random", "Scan", "x86", 100.0, 1};
  CellResult ra;
  CellResult rb;
  {
    ExperimentRunner a(path);
    ExperimentRunner b(path);  // loaded before either wrote anything
    std::thread ta([&] {
      ra = a.Run(spec_a);
      a.Save();
    });
    std::thread tb([&] {
      rb = b.Run(spec_b);
      b.Save();
    });
    ta.join();
    tb.join();
  }
  ExperimentRunner reloaded(path);
  CellResult out;
  ASSERT_TRUE(reloaded.Find(spec_a, &out));
  EXPECT_DOUBLE_EQ(out.best_app_seconds, ra.best_app_seconds);
  ASSERT_TRUE(reloaded.Find(spec_b, &out));
  EXPECT_DOUBLE_EQ(out.best_app_seconds, rb.best_app_seconds);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(ExperimentRunnerTest, SimCacheServesRepeatedEvaluations) {
  const std::string path = TempCachePath("simcache");
  std::remove(path.c_str());
  ExperimentRunner runner(path);
  ASSERT_TRUE(runner.sim_cache_enabled());
  // Even one cell re-measures its tuned/default configurations three
  // times each; the repeats hit the shared noise-free eval cache.
  (void)runner.Run({"Random", "Scan", "x86", 100.0, 0});
  const sparksim::EvalCacheStats stats = runner.sim_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(WarmSequenceTest, AdaptsAcrossDataSizes) {
  const WarmSequenceResult result =
      RunLocatWarmSequence("Aggregation", "x86", {100.0, 200.0});
  ASSERT_EQ(result.datasizes_gb.size(), 2u);
  // The warm (second) tuning pass costs less than the cold one.
  EXPECT_LT(result.incremental_optimization_seconds[1],
            result.incremental_optimization_seconds[0]);
  EXPECT_GT(result.best_app_seconds[0], 0.0);
}

}  // namespace
}  // namespace locat::harness
