#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparksim/event_log.h"
#include "sparksim/properties_io.h"
#include "sparksim/simulator.h"
#include "sparksim/task_sim.h"
#include "workloads/workloads.h"

namespace locat::sparksim {
namespace {

// --------------------------------------------------- TaskLevelSimulator

TEST(TaskSimTest, SingleSlotSerializesAllWork) {
  TaskLevelSimulator sim(/*slots=*/1, /*speed=*/1.0);
  StageSpec stage;
  stage.num_tasks = 4;
  stage.core_seconds = 8.0;  // 2 s per task
  auto result = sim.Execute({stage});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan_s, 8.0, 1e-9);
  EXPECT_EQ(result->tasks.size(), 4u);
}

TEST(TaskSimTest, PerfectParallelismWithEnoughSlots) {
  TaskLevelSimulator sim(8, 1.0);
  StageSpec stage;
  stage.num_tasks = 8;
  stage.core_seconds = 16.0;  // 2 s per task, one wave
  auto result = sim.Execute({stage});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->makespan_s, 2.0, 1e-9);
}

TEST(TaskSimTest, MakespanBoundedBelowByWorkConservation) {
  Rng rng(3);
  TaskLevelSimulator sim(6, 1.0);
  StageSpec stage;
  stage.num_tasks = 23;
  stage.core_seconds = 57.0;
  stage.skew = 1.7;
  auto result = sim.Execute({stage}, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->makespan_s, stage.core_seconds / 6.0 - 1e-9);
  // Work conservation: total task time equals the stage work.
  double total = 0.0;
  for (const auto& t : result->tasks) total += t.end_s - t.start_s;
  EXPECT_NEAR(total, 57.0, 1e-6);
}

TEST(TaskSimTest, NoSlotRunsTwoTasksAtOnce) {
  Rng rng(5);
  TaskLevelSimulator sim(3, 1.0);
  StageSpec stage;
  stage.num_tasks = 11;
  stage.core_seconds = 20.0;
  stage.skew = 2.0;
  auto result = sim.Execute({stage}, &rng);
  ASSERT_TRUE(result.ok());
  for (size_t a = 0; a < result->tasks.size(); ++a) {
    for (size_t b = a + 1; b < result->tasks.size(); ++b) {
      const auto& ta = result->tasks[a];
      const auto& tb = result->tasks[b];
      if (ta.slot != tb.slot) continue;
      const bool disjoint =
          ta.end_s <= tb.start_s + 1e-9 || tb.end_s <= ta.start_s + 1e-9;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(TaskSimTest, DependenciesSequenceStages) {
  TaskLevelSimulator sim(4, 1.0);
  StageSpec a;
  a.num_tasks = 4;
  a.core_seconds = 4.0;
  StageSpec b = a;
  b.deps = {0};
  auto result = sim.Execute({a, b});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->stage_end_s[0], 1.0, 1e-9);
  EXPECT_NEAR(result->stage_end_s[1], 2.0, 1e-9);
  // Every stage-1 task starts after stage 0 completed.
  for (const auto& t : result->tasks) {
    if (t.stage == 1) EXPECT_GE(t.start_s, result->stage_end_s[0] - 1e-9);
  }
}

TEST(TaskSimTest, DetectsCycleAndBadInput) {
  TaskLevelSimulator sim(2, 1.0);
  StageSpec a;
  a.num_tasks = 1;
  a.core_seconds = 1.0;
  a.deps = {1};
  StageSpec b = a;
  b.deps = {0};
  EXPECT_FALSE(sim.Execute({a, b}).ok());

  StageSpec bad;
  bad.num_tasks = 0;
  EXPECT_FALSE(sim.Execute({bad}).ok());
  StageSpec oob;
  oob.num_tasks = 1;
  oob.deps = {7};
  EXPECT_FALSE(sim.Execute({oob}).ok());
}

TEST(TaskSimTest, WaveFormulaApproximatesEventSimulation) {
  // The analytical model's stage time, per_task * (waves - 1 + skew),
  // should track the discrete-event makespan within ~20% over a range of
  // shapes.
  Rng rng(7);
  for (int tasks : {40, 130, 611}) {
    for (double skew : {1.0, 1.5, 2.2}) {
      const int slots = 100;
      StageSpec stage;
      stage.num_tasks = tasks;
      stage.core_seconds = 300.0;
      stage.skew = skew;
      TaskLevelSimulator sim(slots, 1.0);
      auto result = sim.Execute({stage}, &rng);
      ASSERT_TRUE(result.ok());
      const double per_task = stage.core_seconds / tasks;
      const double waves = std::ceil(static_cast<double>(tasks) / slots);
      const double analytical = per_task * (waves - 1.0 + skew);
      // The wave formula is a (deliberately pessimistic) upper envelope:
      // LPT packing overlaps stragglers with the partial last wave, so
      // the event-driven makespan is at most ~10% above it and never
      // below half of it.
      EXPECT_LE(result->makespan_s, 1.10 * analytical)
          << "tasks=" << tasks << " skew=" << skew;
      EXPECT_GE(result->makespan_s, 0.50 * analytical)
          << "tasks=" << tasks << " skew=" << skew;
    }
  }
}

TEST(TaskSimTest, BuildStageDagMatchesQueryShape) {
  const auto app = workloads::TpcDs();
  const auto& q72 = app.queries[static_cast<size_t>(app.IndexOf("q72"))];
  ConfigSpace space(X86Cluster());
  const SparkConf conf = space.Repair(space.DefaultConf());
  const auto dag = BuildStageDag(q72, conf, X86Cluster(), 100.0);
  ASSERT_EQ(dag.size(), static_cast<size_t>(1 + q72.num_shuffle_stages));
  EXPECT_TRUE(dag[0].deps.empty());
  for (size_t s = 1; s < dag.size(); ++s) {
    ASSERT_EQ(dag[s].deps.size(), 1u);
    EXPECT_EQ(dag[s].deps[0], static_cast<int>(s) - 1);
    EXPECT_EQ(dag[s].num_tasks, conf.GetInt(kSqlShufflePartitions));
  }
}

// -------------------------------------------------------------- EventLog

TEST(EventLogTest, RoundTripsAnAppRun) {
  const auto app = workloads::TpcH();
  ClusterSimulator sim(X86Cluster(), 9);
  ConfigSpace space(sim.cluster());
  Rng rng(10);
  const auto run = sim.RunApp(app, space.RandomValid(&rng), 100.0);

  std::ostringstream os;
  WriteEventLog("TPC-H", 100.0, run, os);
  const auto parsed = ParseEventLog(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->app_name, "TPC-H");
  EXPECT_DOUBLE_EQ(parsed->datasize_gb, 100.0);
  ASSERT_EQ(parsed->queries.size(), run.per_query.size());
  for (size_t q = 0; q < run.per_query.size(); ++q) {
    EXPECT_EQ(parsed->queries[q].query, run.per_query[q].name);
    EXPECT_NEAR(parsed->queries[q].exec_seconds,
                run.per_query[q].exec_seconds, 1e-6);
    EXPECT_EQ(parsed->queries[q].oom, run.per_query[q].oom);
  }
  EXPECT_NEAR(parsed->total_seconds, run.total_seconds, 1e-6);
}

TEST(EventLogTest, EscapesQuotesInNames) {
  AppRunResult run;
  QueryMetrics q;
  q.name = "weird\"name\\x";
  q.exec_seconds = 1.5;
  run.per_query.push_back(q);
  run.total_seconds = 1.5;
  std::ostringstream os;
  WriteEventLog("app \"v2\"", 50.0, run, os);
  const auto parsed = ParseEventLog(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->app_name, "app \"v2\"");
  EXPECT_EQ(parsed->queries[0].query, "weird\"name\\x");
}

TEST(EventLogTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseEventLog("not json").ok());
  EXPECT_FALSE(ParseEventLog("{\"Event\":\"JobEnd\"}").ok());
  EXPECT_FALSE(ParseEventLog("").ok());
}

TEST(EventLogTest, SkipsUnknownEvents) {
  const std::string text =
      "{\"Event\":\"ApplicationStart\",\"App Name\":\"x\",\"Datasize GB\":1}\n"
      "{\"Event\":\"ExecutorAdded\",\"Executor\":3}\n"
      "{\"Event\":\"ApplicationEnd\",\"Total Duration\":5}\n";
  const auto parsed = ParseEventLog(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->queries.empty());
  EXPECT_DOUBLE_EQ(parsed->total_seconds, 5.0);
}

TEST(EventLogTest, QcsaMatrixFromSeveralRuns) {
  const auto app = workloads::HiBenchJoin();
  ClusterSimulator sim(X86Cluster(), 11);
  ConfigSpace space(sim.cluster());
  Rng rng(12);
  std::vector<EventLog> logs;
  for (int i = 0; i < 4; ++i) {
    const auto run = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    std::ostringstream os;
    WriteEventLog("Join", 100.0, run, os);
    auto parsed = ParseEventLog(os.str());
    ASSERT_TRUE(parsed.ok());
    logs.push_back(std::move(parsed).value());
  }
  const auto matrix = QcsaMatrixFromLogs(logs);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->size(), 1u);
  EXPECT_EQ((*matrix)[0].size(), 4u);

  // Mismatched logs are rejected.
  logs.back().queries.clear();
  EXPECT_FALSE(QcsaMatrixFromLogs(logs).ok());
}

// ---------------------------------------------------------- PropertiesIo

TEST(PropertiesIoTest, RoundTripsRandomConfs) {
  ConfigSpace space(X86Cluster());
  Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const SparkConf conf = space.RandomValid(&rng);
    const auto back =
        ParseSparkProperties(SparkPropertiesToString(conf), space.DefaultConf());
    ASSERT_TRUE(back.ok());
    for (int p = 0; p < kNumParams; ++p) {
      EXPECT_NEAR(back->Get(static_cast<ParamId>(p)),
                  conf.Get(static_cast<ParamId>(p)), 1e-6)
          << space.spec(p).name;
    }
  }
}

TEST(PropertiesIoTest, UnitSuffixConversions) {
  ConfigSpace space(X86Cluster());
  const SparkConf base = space.DefaultConf();
  // 12288m on a GB-valued parameter -> 12 GB.
  auto conf = ParseSparkProperties("spark.executor.memory 12288m\n", base);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->GetInt(kExecutorMemory), 12);
  // 2g on an MB-valued parameter -> 2048 MB.
  conf = ParseSparkProperties("spark.executor.memoryOverhead=2g\n", base);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->GetInt(kExecutorMemoryOverhead), 2048);
  // 65536k on an MB-valued parameter -> 64 MB.
  conf = ParseSparkProperties("spark.kryoserializer.buffer.max 65536k\n",
                              base);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->GetInt(kKryoBufferMax), 64);
  // Seconds suffix.
  conf = ParseSparkProperties("spark.locality.wait 5s\n", base);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->GetInt(kLocalityWait), 5);
}

TEST(PropertiesIoTest, CommentsAndBlanksIgnored) {
  ConfigSpace space(X86Cluster());
  const auto conf = ParseSparkProperties(
      "# a comment\n\n  spark.shuffle.compress   false  # trailing\n",
      space.DefaultConf());
  ASSERT_TRUE(conf.ok());
  EXPECT_FALSE(conf->GetBool(kShuffleCompress));
}

TEST(PropertiesIoTest, RejectsBadInput) {
  ConfigSpace space(X86Cluster());
  const SparkConf base = space.DefaultConf();
  EXPECT_FALSE(ParseSparkProperties("spark.made.up 3\n", base).ok());
  EXPECT_FALSE(ParseSparkProperties("spark.executor.memory\n", base).ok());
  EXPECT_FALSE(
      ParseSparkProperties("spark.executor.memory twelve\n", base).ok());
  EXPECT_FALSE(
      ParseSparkProperties("spark.shuffle.compress maybe\n", base).ok());
  EXPECT_FALSE(
      ParseSparkProperties("spark.sql.shuffle.partitions 200g\n", base).ok());
}

}  // namespace
}  // namespace locat::sparksim
