#include <gtest/gtest.h>

#include "core/online_service.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::core {
namespace {

OnlineTuningService::Options TinyOptions() {
  OnlineTuningService::Options opts;
  opts.tuner.n_qcsa = 8;
  opts.tuner.n_iicp = 6;
  opts.tuner.lhs_init = 2;
  opts.tuner.min_iterations = 3;
  opts.tuner.max_iterations = 5;
  opts.tuner.warm_iterations = 3;
  opts.tuner.candidates = 60;
  opts.tuner.seed = 31;
  return opts;
}

TEST(OnlineServiceTest, ColdStartThenReuseWithinThreshold) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 600);
  TuningSession session(&sim, workloads::TpcH());
  OnlineTuningService service(&session, TinyOptions());

  const auto conf_100 = service.RecommendedConf(100.0);
  EXPECT_EQ(service.tuning_passes(), 1);
  const double after_cold = service.optimization_seconds();
  EXPECT_GT(after_cold, 0.0);

  // 110 GB is within 25% of 100 GB: instant reuse, no new tuning cost.
  const auto conf_110 = service.RecommendedConf(110.0);
  EXPECT_EQ(service.tuning_passes(), 1);
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), after_cold);
  EXPECT_TRUE(conf_110 == conf_100);
}

TEST(OnlineServiceTest, WarmRetuneForDistantSize) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 601);
  TuningSession session(&sim, workloads::HiBenchAggregation());
  OnlineTuningService service(&session, TinyOptions());

  service.RecommendedConf(100.0);
  const double after_cold = service.optimization_seconds();
  const int evals_cold = session.evaluations();

  // 400 GB is far from 100 GB: a warm adaptation runs, but it is much
  // cheaper (per evaluation count) than the cold start.
  service.RecommendedConf(400.0);
  EXPECT_EQ(service.tuning_passes(), 2);
  EXPECT_GT(service.optimization_seconds(), after_cold);
  EXPECT_LT(session.evaluations() - evals_cold, evals_cold);
  EXPECT_EQ(service.tuned_sizes().size(), 2u);
}

TEST(OnlineServiceTest, ReportRunFeedsModelWithoutCharging) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 602);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());

  const auto conf = service.RecommendedConf(200.0);
  const double meter = service.optimization_seconds();
  service.ReportRun(200.0, conf, 1234.0);
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), meter);
}

TEST(OnlineServiceTest, ExternalRunsBeforeColdStartAreIgnored) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 603);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());
  // Must not crash or corrupt state before any tuning happened.
  sparksim::ConfigSpace space(sparksim::X86Cluster());
  service.ReportRun(100.0, space.Repair(space.DefaultConf()), 999.0);
  EXPECT_EQ(service.tuning_passes(), 0);
}

}  // namespace
}  // namespace locat::core
