#include <gtest/gtest.h>

#include <limits>

#include "core/online_service.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::core {
namespace {

OnlineTuningService::Options TinyOptions() {
  OnlineTuningService::Options opts;
  opts.tuner.n_qcsa = 8;
  opts.tuner.n_iicp = 6;
  opts.tuner.lhs_init = 2;
  opts.tuner.min_iterations = 3;
  opts.tuner.max_iterations = 5;
  opts.tuner.warm_iterations = 3;
  opts.tuner.candidates = 60;
  opts.tuner.seed = 31;
  return opts;
}

TEST(OnlineServiceTest, ColdStartThenReuseWithinThreshold) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 600);
  TuningSession session(&sim, workloads::TpcH());
  OnlineTuningService service(&session, TinyOptions());

  const auto conf_100 = service.RecommendedConf(100.0).value();
  EXPECT_EQ(service.tuning_passes(), 1);
  const double after_cold = service.optimization_seconds();
  EXPECT_GT(after_cold, 0.0);

  // 110 GB is within 25% of 100 GB: instant reuse, no new tuning cost.
  const auto conf_110 = service.RecommendedConf(110.0).value();
  EXPECT_EQ(service.tuning_passes(), 1);
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), after_cold);
  EXPECT_TRUE(conf_110 == conf_100);
}

TEST(OnlineServiceTest, WarmRetuneForDistantSize) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 601);
  TuningSession session(&sim, workloads::HiBenchAggregation());
  OnlineTuningService service(&session, TinyOptions());

  ASSERT_TRUE(service.RecommendedConf(100.0).ok());
  const double after_cold = service.optimization_seconds();
  const int evals_cold = session.evaluations();

  // 400 GB is far from 100 GB: a warm adaptation runs, but it is much
  // cheaper (per evaluation count) than the cold start.
  ASSERT_TRUE(service.RecommendedConf(400.0).ok());
  EXPECT_EQ(service.tuning_passes(), 2);
  EXPECT_GT(service.optimization_seconds(), after_cold);
  EXPECT_LT(session.evaluations() - evals_cold, evals_cold);
  EXPECT_EQ(service.tuned_sizes().size(), 2u);
}

TEST(OnlineServiceTest, ReportRunFeedsModelWithoutCharging) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 602);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());

  const auto conf = service.RecommendedConf(200.0).value();
  const double meter = service.optimization_seconds();
  service.ReportRun(200.0, conf, 1234.0);
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), meter);
}

TEST(OnlineServiceTest, ExternalRunsBeforeColdStartAreIgnored) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 603);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());
  // Must not crash or corrupt state before any tuning happened.
  sparksim::ConfigSpace space(sparksim::X86Cluster());
  service.ReportRun(100.0, space.Repair(space.DefaultConf()), 999.0);
  EXPECT_EQ(service.tuning_passes(), 0);
}

TEST(OnlineServiceTest, RejectsNonPositiveDatasize) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 604);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());

  EXPECT_EQ(service.RecommendedConf(0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RecommendedConf(-5.0).status().code(),
            StatusCode::kInvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(service.RecommendedConf(nan).status().code(),
            StatusCode::kInvalidArgument);
  // Nothing was tuned; the invalid requests never reached the tuner.
  EXPECT_EQ(service.tuning_passes(), 0);
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), 0.0);
}

TEST(OnlineServiceTest, ReuseGapIsSymmetric) {
  // Regression: the gap used to be |ds - x| / ds with ds the *tuned*
  // size, so tuned=100, requested=130 gave 0.30 (> 0.25 => retune) even
  // though 130 -> 100 would have given 0.23 (reuse). The symmetric gap
  // |ds - x| / max(ds, x) = 0.23 reuses in both directions.
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 605);
  TuningSession session(&sim, workloads::HiBenchAggregation());
  OnlineTuningService service(&session, TinyOptions());

  const auto conf_100 = service.RecommendedConf(100.0).value();
  ASSERT_EQ(service.tuning_passes(), 1);

  const auto conf_130 = service.RecommendedConf(130.0).value();
  EXPECT_EQ(service.tuning_passes(), 1) << "symmetric gap 30/130 = 0.23 "
                                           "is within the 0.25 threshold";
  EXPECT_TRUE(conf_130 == conf_100);

  // Far outside the threshold in either direction still re-tunes.
  service.RecommendedConf(400.0).value();
  EXPECT_EQ(service.tuning_passes(), 2);
}

TEST(OnlineServiceTest, ReportRunRejectsNonFiniteObservations) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 604);
  TuningSession session(&sim, workloads::HiBenchScan());
  OnlineTuningService service(&session, TinyOptions());
  const auto conf = service.RecommendedConf(100.0).value();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double bad : {nan, inf, -inf, 0.0, -12.0}) {
    EXPECT_EQ(service.ReportRun(100.0, conf, bad).code(),
              StatusCode::kInvalidArgument)
        << "observed_seconds=" << bad;
    EXPECT_EQ(service.ReportRun(bad, conf, 30.0).code(),
              StatusCode::kInvalidArgument)
        << "datasize_gb=" << bad;
  }
  EXPECT_TRUE(service.ReportRun(100.0, conf, 30.0).ok());
}

TEST(OnlineServiceTest, ReportFailedRunValidatesArguments) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 605);
  TuningSession session(&sim, workloads::HiBenchScan());
  OnlineTuningService service(&session, TinyOptions());
  const auto conf = service.RecommendedConf(100.0).value();

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(service.ReportFailedRun(nan, conf).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.ReportFailedRun(-1.0, conf).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.ReportFailedRun(100.0, conf, nan).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.ReportFailedRun(100.0, conf, -3.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.failed_reports(), 0);  // rejected reports don't count
  // partial_seconds of zero is legal: "it died before doing any work".
  EXPECT_TRUE(service.ReportFailedRun(100.0, conf, 0.0).ok());
  EXPECT_EQ(service.failed_reports(), 1);
}

TEST(OnlineServiceTest, ReportFailedRunFallsBackToLastKnownGood) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 606);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());

  const auto tuned = service.RecommendedConf(200.0).value();
  ASSERT_EQ(service.tuning_passes(), 1);

  // A user-supplied run establishes a different last-known-good conf.
  sparksim::SparkConf good = tuned;
  good.Set(sparksim::kExecutorInstances,
           tuned.Get(sparksim::kExecutorInstances) > 4 ? 4.0 : 6.0);
  good = session.space().Repair(good);
  ASSERT_TRUE(service.ReportRun(200.0, good, 45.0).ok());

  // The tuned conf then dies in production: the service must degrade to
  // the last-known-good conf without paying for a fresh tuning pass.
  ASSERT_TRUE(service.ReportFailedRun(200.0, tuned, 12.0).ok());
  EXPECT_EQ(service.failed_reports(), 1);
  EXPECT_EQ(service.penalized_count(200.0), 1);

  const double meter = service.optimization_seconds();
  const auto fallback = service.RecommendedConf(200.0).value();
  EXPECT_TRUE(fallback == good);
  EXPECT_EQ(service.tuning_passes(), 1);  // no retune for the fallback
  EXPECT_DOUBLE_EQ(service.optimization_seconds(), meter);
}

TEST(OnlineServiceTest, ReportFailedRunWithoutGoodRunForcesRetune) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 607);
  TuningSession session(&sim, workloads::HiBenchAggregation());
  OnlineTuningService service(&session, TinyOptions());

  const auto tuned = service.RecommendedConf(150.0).value();
  ASSERT_EQ(service.tuning_passes(), 1);

  // No external good run is known for this size: the only safe move is
  // to drop the poisoned entry and re-tune on the next request.
  ASSERT_TRUE(service.ReportFailedRun(150.0, tuned).ok());
  ASSERT_TRUE(service.RecommendedConf(150.0).ok());
  EXPECT_EQ(service.tuning_passes(), 2);
}

TEST(OnlineServiceTest, SnapshotQuantilesNeedALatencySink) {
  // Regression: Snapshot() used to leave the latency quantiles at zero
  // even when latency *was* being measured. The contract now: no sink
  // wired -> no clock reads and zero quantiles; EnableLatencyTracking
  // wires an owned histogram and the quantiles become real.
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 608);
  TuningSession session(&sim, workloads::HiBenchScan());
  OnlineTuningService service(&session, TinyOptions());

  ASSERT_TRUE(service.RecommendedConf(100.0).ok());
  EXPECT_DOUBLE_EQ(service.Snapshot().recommend_p50_s, 0.0);
  EXPECT_DOUBLE_EQ(service.Snapshot().recommend_p99_s, 0.0);

  service.EnableLatencyTracking();
  ASSERT_TRUE(service.RecommendedConf(105.0).ok());  // reuse, but clocked
  const auto snap = service.Snapshot();
  EXPECT_GT(snap.recommend_p50_s, 0.0);
  EXPECT_GE(snap.recommend_p99_s, snap.recommend_p50_s);
  EXPECT_GT(snap.optimization_seconds, 0.0);
}

TEST(OnlineServiceTest, PublishedPlanTracksMutations) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 609);
  TuningSession session(&sim, workloads::HiBenchJoin());
  OnlineTuningService service(&session, TinyOptions());

  const auto before = service.Published();
  ASSERT_NE(before, nullptr);
  EXPECT_TRUE(before->tuned.empty());
  EXPECT_FALSE(service.PublishedReuse(100.0).has_value());

  const auto conf = service.RecommendedConf(100.0).value();
  // The pre-mutation snapshot is immutable; the fresh one has the plan.
  EXPECT_TRUE(before->tuned.empty());
  const auto after = service.Published();
  EXPECT_EQ(after->tuning_passes, 1);
  ASSERT_EQ(after->tuned.size(), 1u);
  const auto reuse = service.PublishedReuse(110.0);
  ASSERT_TRUE(reuse.has_value());
  EXPECT_TRUE(*reuse == conf);
  EXPECT_FALSE(service.PublishedReuse(400.0).has_value());
}

}  // namespace
}  // namespace locat::core
