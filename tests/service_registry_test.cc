#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/online_service.h"
#include "core/service_registry.h"
#include "sparksim/properties_io.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::core {
namespace {

OnlineTuningService::Options TinyOptions() {
  OnlineTuningService::Options opts;
  opts.tuner.n_qcsa = 8;
  opts.tuner.n_iicp = 6;
  opts.tuner.lhs_init = 2;
  opts.tuner.min_iterations = 3;
  opts.tuner.max_iterations = 5;
  opts.tuner.warm_iterations = 3;
  opts.tuner.candidates = 60;
  opts.tuner.seed = 31;
  return opts;
}

sparksim::SparkSqlApp AppByName(const std::string& name) {
  for (const auto& app : workloads::AllBenchmarks()) {
    if (app.name == name) return app;
  }
  ADD_FAILURE() << "unknown app " << name;
  return workloads::TpcH();
}

/// Deterministic per-app simulator seed: a function of the name alone, so
/// re-admitting an app recreates the identical backend.
uint64_t NameSeed(const std::string& name) {
  uint64_t h = 0;
  for (unsigned char c : name) h = h * 131 + c;
  return 700 + h % 1000;
}

/// Simulator + session + service stack per app, deterministic in the app
/// name alone.
class SimBackend : public AppBackend {
 public:
  explicit SimBackend(const std::string& name,
                      const OnlineTuningService::Options& opts)
      : app_(AppByName(name)),
        sim_(std::make_unique<sparksim::ClusterSimulator>(
            sparksim::X86Cluster(), NameSeed(name))),
        session_(std::make_unique<TuningSession>(sim_.get(), app_)),
        service_(std::make_unique<OnlineTuningService>(session_.get(), opts)) {
  }

  OnlineTuningService* service() override { return service_.get(); }
  const sparksim::SparkSqlApp& app() const override { return app_; }

 private:
  sparksim::SparkSqlApp app_;
  std::unique_ptr<sparksim::ClusterSimulator> sim_;
  std::unique_ptr<TuningSession> session_;
  std::unique_ptr<OnlineTuningService> service_;
};

ServiceRegistry::BackendFactory Factory(
    const OnlineTuningService::Options& opts) {
  return [opts](const std::string& name) -> std::unique_ptr<AppBackend> {
    return std::make_unique<SimBackend>(name, opts);
  };
}

TEST(ServiceRegistryTest, ColdLookupAdmitsAndTunes) {
  ServiceRegistry registry(Factory(TinyOptions()));
  const auto conf = registry.Lookup("TPC-H", 100.0);
  ASSERT_TRUE(conf.ok()) << conf.status().ToString();

  const auto stats = registry.GetStats();
  EXPECT_EQ(stats.live_apps, 1u);
  EXPECT_EQ(stats.lookups_miss, 1u);
  EXPECT_EQ(stats.retunes_cold, 1u);
  EXPECT_EQ(stats.retunes_drift, 0u);

  // Within the reuse gap: a lock-free hit, no new tuning pass.
  const auto again = registry.Lookup("TPC-H", 110.0);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *conf);
  EXPECT_EQ(registry.GetStats().lookups_hit, 1u);
  EXPECT_EQ(registry.GetStats().retunes_cold, 1u);

  // Far outside the gap: a drift re-tune, not a cold start.
  ASSERT_TRUE(registry.Lookup("TPC-H", 400.0).ok());
  EXPECT_EQ(registry.GetStats().retunes_drift, 1u);

  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->snapshot.tuning_passes, 2);
  EXPECT_FALSE(row->warm_started);  // nothing to transfer from
}

TEST(ServiceRegistryTest, LookupRejectsBadArguments) {
  ServiceRegistry registry(Factory(TinyOptions()));
  EXPECT_EQ(registry.Lookup("TPC-H", 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Lookup("TPC-H", -3.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.GetStats().live_apps, 0u);

  ServiceRegistry broken(
      [](const std::string&) -> std::unique_ptr<AppBackend> {
        return nullptr;
      });
  EXPECT_EQ(broken.Lookup("TPC-H", 100.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceRegistryTest, ReportsForUnknownAppAreNotFound) {
  ServiceRegistry registry(Factory(TinyOptions()));
  sparksim::ConfigSpace space(sparksim::X86Cluster());
  const auto conf = space.Repair(space.DefaultConf());
  EXPECT_EQ(registry.ReportRun("ghost", 100.0, conf, 50.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.ReportFailedRun("ghost", 100.0, conf).code(),
            StatusCode::kNotFound);
}

TEST(ServiceRegistryTest, ConcurrentColdLookupsSingleFlight) {
  // N concurrent requests for the same never-seen app must coalesce
  // behind exactly one cold tuning pass and all serve its result.
  constexpr int kThreads = 6;
  ServiceRegistry::Options ropts;
  ropts.tune_threads = 4;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);

  std::vector<std::thread> threads;
  std::vector<StatusOr<sparksim::SparkConf>> confs(
      kThreads, Status::Internal("not served"));
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { confs[i] = registry.Lookup("TPC-H", 100.0); });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(confs[i].ok()) << confs[i].status().ToString();
    EXPECT_TRUE(*confs[i] == *confs[0]);
  }
  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->snapshot.tuning_passes, 1) << "single-flight must dedup";
  const auto stats = registry.GetStats();
  EXPECT_EQ(stats.retunes_cold, 1u);
  // Everyone who didn't own the pass was served without tuning.
  EXPECT_EQ(stats.lookups_hit + stats.lookups_coalesced,
            static_cast<uint64_t>(kThreads - 1));
}

TEST(ServiceRegistryTest, ConcurrentDriftLookupsSingleFlight) {
  constexpr int kThreads = 5;
  ServiceRegistry::Options ropts;
  ropts.tune_threads = 2;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);
  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());  // cold start, alone

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      if (!registry.Lookup("TPC-H", 500.0).ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->snapshot.tuning_passes, 2)
      << "the drifted size must be tuned exactly once";
  EXPECT_EQ(registry.GetStats().retunes_drift, 1u);
}

/// Drives a fixed multi-app trace with per-round quiescent barriers and
/// appends every served conf as a properties string, in (round, app)
/// order, to `served`.
void ServeTrace(ServiceRegistry& registry, int rounds,
                const std::vector<std::string>& apps, bool threaded_rounds,
                std::vector<std::string>* served) {
  static const double kSizes[] = {100.0, 120.0, 300.0, 330.0, 500.0};
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::string> round(apps.size());
    auto drive = [&](size_t ai) {
      const double ds = kSizes[(static_cast<size_t>(r) + ai) % 5];
      const auto conf = registry.Lookup(apps[ai], ds);
      if (conf.ok()) round[ai] = sparksim::SparkPropertiesToString(*conf);
    };
    if (threaded_rounds) {
      std::vector<std::thread> threads;
      for (size_t ai = 0; ai < apps.size(); ++ai) {
        threads.emplace_back(drive, ai);
      }
      for (auto& t : threads) t.join();
    } else {
      for (size_t ai = 0; ai < apps.size(); ++ai) drive(ai);
    }
    registry.AdvanceTick();
    for (auto& s : round) {
      ASSERT_FALSE(s.empty()) << "a lookup failed in round " << r;
      served->push_back(std::move(s));
    }
  }
}

TEST(ServiceRegistryTest, ServedConfsBitIdenticalAcrossThreadCounts) {
  // The tentpole determinism contract: on a fixed trace the served confs
  // are byte-identical whether tuning runs inline, on a small pool, or on
  // a large pool with concurrent per-round drivers.
  const std::vector<std::string> apps = {"TPC-H", "Join", "Scan"};
  std::vector<std::vector<std::string>> runs;
  for (const auto& [tune_threads, threaded_rounds] :
       std::vector<std::pair<int, bool>>{{1, false}, {4, true}, {8, true}}) {
    ServiceRegistry::Options ropts;
    ropts.tune_threads = tune_threads;
    ServiceRegistry registry(Factory(TinyOptions()), ropts);
    runs.emplace_back();
    ServeTrace(registry, 4, apps, threaded_rounds, &runs.back());
    if (HasFatalFailure()) return;
  }
  ASSERT_EQ(runs[0].size(), 12u);
  EXPECT_EQ(runs[0], runs[1]) << "tune_threads=4 diverged";
  EXPECT_EQ(runs[0], runs[2]) << "tune_threads=8 diverged";
}

TEST(ServiceRegistryWarmStartTest, OffIsByteExactToPlainService) {
  // --warm-start off contract: the registry is a pure front door; the
  // tuner underneath must behave byte-identically to a hand-driven
  // OnlineTuningService on the same session/seed.
  sparksim::ClusterSimulator sim(
      sparksim::X86Cluster(), NameSeed("TPC-H"));
  TuningSession session(&sim, workloads::TpcH());
  OnlineTuningService plain(&session, TinyOptions());

  ServiceRegistry::Options ropts;
  ropts.warm_start = false;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);

  for (double ds : {100.0, 120.0, 300.0, 330.0, 500.0, 100.0}) {
    const auto direct = plain.RecommendedConf(ds);
    const auto via_registry = registry.Lookup("TPC-H", ds);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_registry.ok());
    EXPECT_EQ(sparksim::SparkPropertiesToString(*direct),
              sparksim::SparkPropertiesToString(*via_registry))
        << "diverged at ds=" << ds;
  }
  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_FALSE(row->warm_started);
  EXPECT_EQ(row->snapshot.tuning_passes, plain.tuning_passes());
}

TEST(ServiceRegistryWarmStartTest, EvictedAppReadmitsFromOwnHistory) {
  ServiceRegistry::Options ropts;
  ropts.capacity = 1;  // admitting a second app forces an eviction
  ServiceRegistry registry(Factory(TinyOptions()), ropts);

  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());
  const int evals_cold = registry.GetAppRow("TPC-H")->snapshot.tuning_passes;
  ASSERT_EQ(evals_cold, 1);
  registry.AdvanceTick();

  // A second app overflows capacity; TPC-H is least recently used.
  ASSERT_TRUE(registry.Lookup("Join", 100.0).ok());
  registry.AdvanceTick();
  EXPECT_EQ(registry.GetStats().evictions_capacity, 1u);
  EXPECT_FALSE(registry.GetAppRow("TPC-H").has_value());

  // Re-admission: the persisted history seeds the new tuner, so the
  // first recommendation is a warm start, not a from-scratch cold pass.
  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());
  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_TRUE(row->warm_started);
  // Two warm starts happened: Join seeded cross-app from the tuned TPC-H
  // donor, then TPC-H re-admitted from its own persisted history.
  EXPECT_EQ(registry.GetStats().warm_start_hits, 2u);
}

TEST(ServiceRegistryWarmStartTest, NewAppSeedsFromSimilarTunedApps) {
  ServiceRegistry registry(Factory(TinyOptions()));
  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());
  ASSERT_TRUE(registry.Lookup("Join", 100.0).ok());
  EXPECT_FALSE(registry.GetAppRow("Join")->warm_started)
      << "donor knowledge only lands in the store at the tick barrier";
  registry.AdvanceTick();

  ASSERT_TRUE(registry.Lookup("Aggregation", 100.0).ok());
  const auto row = registry.GetAppRow("Aggregation");
  ASSERT_TRUE(row.has_value());
  EXPECT_TRUE(row->warm_started);
  EXPECT_GE(registry.GetStats().warm_start_hits, 1u);
}

TEST(ServiceRegistryTest, TtlEvictsIdleApps) {
  ServiceRegistry::Options ropts;
  ropts.ttl_ticks = 2;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);
  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());

  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(registry.Lookup("Scan", 100.0).ok());  // stays warm
    registry.AdvanceTick();
  }
  const auto stats = registry.GetStats();
  EXPECT_EQ(stats.evictions_ttl, 1u);
  EXPECT_FALSE(registry.GetAppRow("TPC-H").has_value());
  EXPECT_TRUE(registry.GetAppRow("Scan").has_value());
}

TEST(ServiceRegistryTest, FingerprintDistanceSeparatesWorkloads) {
  const AppFingerprint tpch = AppFingerprint::FromProfile(workloads::TpcH());
  const AppFingerprint tpch2 = AppFingerprint::FromProfile(workloads::TpcH());
  const AppFingerprint scan =
      AppFingerprint::FromProfile(workloads::HiBenchScan());
  const AppFingerprint join =
      AppFingerprint::FromProfile(workloads::HiBenchJoin());

  EXPECT_DOUBLE_EQ(AppFingerprint::Distance(tpch, tpch2), 0.0);
  EXPECT_GT(AppFingerprint::Distance(tpch, scan), 0.0);
  // A scan (no shuffle, selection-only) sits farther from a shuffle-heavy
  // join than another join-bearing workload does.
  EXPECT_GT(AppFingerprint::Distance(scan, join),
            AppFingerprint::Distance(tpch, join));
}

TEST(ServiceRegistryTest, ConcurrentReadersDuringTunes) {
  // Readers (status rows, stats, published plans) must be safe while
  // tuning passes mutate services — the tsan leg runs this.
  ServiceRegistry::Options ropts;
  ropts.tune_threads = 2;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& row : registry.AppRows()) {
        ASSERT_FALSE(row.snapshot.app.empty());
      }
      (void)registry.GetStats();
      (void)registry.GetAppRow("TPC-H");
      (void)registry.RenderStatusTable();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> writers;
  for (int i = 0; i < 2; ++i) {
    writers.emplace_back([&, i] {
      const std::string app = i == 0 ? "TPC-H" : "Join";
      for (double ds : {100.0, 400.0, 120.0, 500.0}) {
        ASSERT_TRUE(registry.Lookup(app, ds).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(registry.GetStats().live_apps, 2u);
}

TEST(ServiceRegistryTest, TrackLatencyReportsLookupQuantiles) {
  ServiceRegistry::Options ropts;
  ropts.track_latency = true;
  ServiceRegistry registry(Factory(TinyOptions()), ropts);
  ASSERT_TRUE(registry.Lookup("TPC-H", 100.0).ok());
  ASSERT_TRUE(registry.Lookup("TPC-H", 105.0).ok());
  EXPECT_GT(registry.LookupLatencyQuantile(0.5), 0.0);
  const auto row = registry.GetAppRow("TPC-H");
  ASSERT_TRUE(row.has_value());
  EXPECT_GT(row->snapshot.recommend_p50_s, 0.0)
      << "track_latency must flow into the per-service histograms";
}

}  // namespace
}  // namespace locat::core
