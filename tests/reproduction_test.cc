// Headline-claim regression tests: small, deterministic versions of the
// paper facts the repository is calibrated to reproduce. If one of these
// fails after a simulator/workload change, the corresponding figure bench
// has drifted too.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/qcsa.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

// Runs the canonical 30-sample QCSA used by the Figure 8 bench.
core::QcsaResult TpcDsQcsa() {
  const auto app = workloads::TpcDs();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1001);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(2002);
  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  for (int run = 0; run < 30; ++run) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
    }
  }
  auto qcsa = core::AnalyzeQuerySensitivity(times);
  EXPECT_TRUE(qcsa.ok());
  return std::move(qcsa).value();
}

TEST(ReproductionTest, TpcDsQcsaRecoversThePapers23Queries) {
  const auto app = workloads::TpcDs();
  const core::QcsaResult qcsa = TpcDsQcsa();

  // Section 5.2: exactly these 23 queries survive QCSA.
  const std::set<std::string> paper_csq = {
      "q72", "q29", "q14b", "q43", "q41", "q99", "q57", "q33",
      "q14a", "q69", "q40", "q64a", "q50", "q21", "q70", "q95",
      "q54", "q23a", "q23b", "q15", "q58", "q62", "q20"};
  std::set<std::string> ours;
  for (int idx : qcsa.csq_indices) {
    ours.insert(app.queries[static_cast<size_t>(idx)].name);
  }
  EXPECT_EQ(ours, paper_csq);
}

TEST(ReproductionTest, Q72IsTheMostSensitiveHeavyShuffler) {
  const auto app = workloads::TpcDs();
  const core::QcsaResult qcsa = TpcDsQcsa();
  const int q72 = app.IndexOf("q72");
  const int q04 = app.IndexOf("q04");
  // Q72's CV dwarfs Q04's (paper: 3.49 vs 0.24; our ratio is smaller but
  // the ordering and tertile split hold).
  EXPECT_GT(qcsa.cv[static_cast<size_t>(q72)],
            4.0 * qcsa.cv[static_cast<size_t>(q04)]);
}

TEST(ReproductionTest, Q72Shuffles52GbPer100Gb) {
  const auto app = workloads::TpcDs();
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1, params);
  sparksim::ConfigSpace space(sim.cluster());
  // Section 5.11's measurement.
  const auto metrics = sim.RunQuery(
      app.queries[static_cast<size_t>(app.IndexOf("q72"))],
      space.Repair(space.DefaultConf()), 100.0);
  EXPECT_NEAR(metrics.shuffle_gb, 52.0, 3.0);
  const auto q08 = sim.RunQuery(
      app.queries[static_cast<size_t>(app.IndexOf("q08"))],
      space.Repair(space.DefaultConf()), 100.0);
  EXPECT_LT(q08.shuffle_gb, 0.05);  // "only 5 MB"
}

TEST(ReproductionTest, Q04IsLongButInsensitive) {
  const auto app = workloads::TpcDs();
  const core::QcsaResult qcsa = TpcDsQcsa();
  const int q04 = app.IndexOf("q04");
  // Q04 must be classified CIQ despite being one of the longest queries.
  EXPECT_EQ(std::find(qcsa.csq_indices.begin(), qcsa.csq_indices.end(), q04),
            qcsa.csq_indices.end());
}

TEST(ReproductionTest, RqaIsSubstantiallyCheaperThanFullApp) {
  // Removing the 81 CIQs must pay: the RQA costs well under half of the
  // full application under typical configurations (this is where QCSA's
  // optimization-time saving comes from).
  const auto app = workloads::TpcDs();
  const core::QcsaResult qcsa = TpcDsQcsa();
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 3, params);
  sparksim::ConfigSpace space(sim.cluster());
  // Under reasonable configurations (the region BO spends its reduced
  // phase in) the 23 CSQs account for roughly half the application time,
  // so each RQA run costs well below the full application. Under *bad*
  // random configurations the CSQs blow up and dominate, which is exactly
  // why they are the queries worth keeping.
  sparksim::SparkConf conf = space.DefaultConf();
  conf.Set(sparksim::kExecutorInstances, 35);
  conf.Set(sparksim::kExecutorCores, 4);
  conf.Set(sparksim::kExecutorMemory, 24);
  conf.Set(sparksim::kExecutorMemoryOverhead, 4096);
  conf.Set(sparksim::kSqlShufflePartitions, 700);
  conf = space.Repair(conf);
  const double full = sim.RunApp(app, conf, 100.0).total_seconds;
  const double rqa =
      sim.RunAppSubset(app, qcsa.csq_indices, conf, 100.0)->total_seconds;
  EXPECT_LT(rqa, 0.75 * full);
}

}  // namespace
}  // namespace locat
