#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace locat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::NotFound("").code(),
      Status::Internal("").code(), Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
}

Status FailsThenPropagates(bool fail) {
  LOCAT_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out.size(), 3u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, LognormalNoiseHasUnitMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.LognormalNoise(0.1);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(19);
  for (int n : {1, 2, 5, 33}) {
    std::vector<int> perm = rng.Permutation(n);
    std::sort(perm.begin(), perm.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(perm[static_cast<size_t>(i)], i);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child and the advanced parent should not produce equal streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"alpha", "1"});
  tp.AddRow({"b", "22"});
  std::ostringstream os;
  tp.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(tp.row_count(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"x"});
  std::ostringstream os;
  tp.Print(os);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace locat
