#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/distributions.h"
#include "math/stats.h"
#include "ml/ei_mcmc.h"
#include "ml/pca.h"
#include "ml/random_forest.h"

namespace locat::ml {
namespace {

using math::Matrix;
using math::Vector;

// ------------------------------------------------------------------ PCA

TEST(PcaTest, RecoversAxisAlignedStructure) {
  // Variance concentrated in dimension 1.
  Rng rng(5);
  Matrix x(50, 3);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = 0.5 + 0.01 * rng.NextGaussian();
    x(i, 1) = rng.NextDouble();  // dominant variance
    x(i, 2) = 0.5 + 0.01 * rng.NextGaussian();
  }
  Pca pca;
  ASSERT_TRUE(pca.Fit(x).ok());
  EXPECT_EQ(pca.num_components(), 1);
  EXPECT_GT(pca.explained_variance_ratio(), 0.85);
  // The first component is (roughly) dimension 1.
  const Vector lo = pca.Project(Vector{0.5, 0.0, 0.5});
  const Vector hi = pca.Project(Vector{0.5, 1.0, 0.5});
  EXPECT_GT(std::fabs(hi[0] - lo[0]), 0.9);
}

TEST(PcaTest, ReconstructionRoundTripsOnSubspacePoints) {
  Rng rng(7);
  Matrix x(40, 4);
  for (size_t i = 0; i < 40; ++i) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    x(i, 0) = a;
    x(i, 1) = 2.0 * a;
    x(i, 2) = b;
    x(i, 3) = -b;
  }
  Pca pca;
  Pca::Options opts;
  opts.variance_to_retain = 0.999;
  ASSERT_TRUE(pca.Fit(x, opts).ok());
  const Vector original = x.Row(5);
  const Vector back = pca.Reconstruct(pca.Project(original));
  EXPECT_LT((back - original).Norm(), 1e-6);
}

TEST(PcaTest, RejectsDegenerateInput) {
  Pca pca;
  EXPECT_FALSE(pca.Fit(Matrix(1, 3)).ok());
  EXPECT_FALSE(pca.Fit(Matrix(5, 3)).ok());  // all-zero: no variance
}

// --------------------------------------------------------- RandomForest

TEST(RandomForestTest, FitsNonlinearFunction) {
  Rng rng(11);
  Matrix x(250, 2);
  Vector y(250);
  for (size_t i = 0; i < 250; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = (x(i, 0) > 0.5 ? 3.0 : 0.0) + std::sin(5.0 * x(i, 1));
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  const auto preds = forest.PredictAll(x);
  EXPECT_LT(math::MeanSquaredError(preds, y.data()), 0.25);
}

TEST(RandomForestTest, SpreadGrowsOffDistribution) {
  Rng rng(13);
  Matrix x(100, 1);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.Uniform(0.0, 0.5);  // training mass in [0, 0.5]
    y[i] = x(i, 0) * 10.0 + rng.Gaussian(0.0, 0.3);
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_GE(forest.PredictStdDev(Vector{0.25}), 0.0);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Rng rng(17);
  Matrix x(60, 2);
  Vector y(60);
  for (size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.NextDouble();
    x(i, 1) = rng.NextDouble();
    y[i] = x(i, 0) + x(i, 1);
  }
  RandomForest a;
  RandomForest b;
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.Predict(Vector{0.3, 0.7}), b.Predict(Vector{0.3, 0.7}));
}

// ----------------------------------------------------- Acquisition rules

TEST(AcquisitionTest, ProbabilityOfImprovementProperties) {
  // PI in [0, 1], monotone in the mean.
  EXPECT_GE(math::ProbabilityOfImprovement(5.0, 1.0, 4.0), 0.0);
  EXPECT_LE(math::ProbabilityOfImprovement(5.0, 1.0, 4.0), 1.0);
  EXPECT_GT(math::ProbabilityOfImprovement(3.0, 1.0, 4.0),
            math::ProbabilityOfImprovement(5.0, 1.0, 4.0));
  // Degenerate sigma.
  EXPECT_DOUBLE_EQ(math::ProbabilityOfImprovement(3.0, 0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(math::ProbabilityOfImprovement(5.0, 0.0, 4.0), 0.0);
}

TEST(AcquisitionTest, UcbTradesOffMeanAndUncertainty) {
  EXPECT_GT(math::NegativeLowerConfidenceBound(5.0, 2.0, 2.0),
            math::NegativeLowerConfidenceBound(5.0, 1.0, 2.0));
  EXPECT_GT(math::NegativeLowerConfidenceBound(4.0, 1.0, 2.0),
            math::NegativeLowerConfidenceBound(5.0, 1.0, 2.0));
}

TEST(AcquisitionTest, EiMcmcSupportsAllKinds) {
  Rng rng(19);
  Matrix x(8, 1);
  Vector y(8);
  for (int i = 0; i < 8; ++i) {
    x(static_cast<size_t>(i), 0) = i / 8.0;
    y[static_cast<size_t>(i)] = std::cos(3.0 * i / 8.0);
  }
  for (AcquisitionKind kind :
       {AcquisitionKind::kExpectedImprovement,
        AcquisitionKind::kProbabilityOfImprovement, AcquisitionKind::kUcb}) {
    EiMcmc::Options opts;
    opts.acquisition = kind;
    opts.num_hyper_samples = 3;
    opts.burn_in = 4;
    EiMcmc model(opts);
    Rng fit_rng(21);
    ASSERT_TRUE(model.Fit(x, y, &fit_rng).ok());
    const double value = model.AcquisitionValue(Vector{0.5});
    EXPECT_TRUE(std::isfinite(value));
  }
}

}  // namespace
}  // namespace locat::ml
