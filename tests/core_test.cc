#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dagp.h"
#include "core/iicp.h"
#include "core/locat_tuner.h"
#include "core/qcsa.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::core {
namespace {

using math::Matrix;
using math::Vector;

// ------------------------------------------------------------------ QCSA

TEST(QcsaTest, TertileRuleMatchesEquation4) {
  // Query 0: CV 0; query 1: tiny CV; query 2: huge CV.
  std::vector<std::vector<double>> times = {
      {10, 10, 10, 10},
      {10, 11, 10, 11},
      {10, 50, 10, 90},
  };
  auto result = AnalyzeQuerySensitivity(times);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->min_cv, 0.0);
  EXPECT_NEAR(result->threshold,
              result->min_cv + (result->max_cv - result->min_cv) / 3.0,
              1e-12);
  EXPECT_EQ(result->csq_indices, std::vector<int>({2}));
  EXPECT_EQ(result->ciq_indices, std::vector<int>({0, 1}));
}

TEST(QcsaTest, CvMatchesDefinition) {
  std::vector<std::vector<double>> times = {{2, 4, 4, 4, 5, 5, 7, 9}};
  auto result = AnalyzeQuerySensitivity(times);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cv[0], 0.4);  // sd 2 / mean 5
}

TEST(QcsaTest, AllEqualCvKeepsEveryQuery) {
  std::vector<std::vector<double>> times = {{10, 20}, {1, 2}};
  auto result = AnalyzeQuerySensitivity(times);
  ASSERT_TRUE(result.ok());
  // Identical CVs: degenerate range; nothing should be dropped.
  EXPECT_EQ(result->csq_indices.size(), 2u);
  EXPECT_TRUE(result->ciq_indices.empty());
}

TEST(QcsaTest, InputValidation) {
  EXPECT_FALSE(AnalyzeQuerySensitivity({}).ok());
  EXPECT_FALSE(AnalyzeQuerySensitivity({{1.0}}).ok());
  EXPECT_FALSE(AnalyzeQuerySensitivity({{1, 2}, {1, 2, 3}}).ok());
}

// ------------------------------------------------------------------ IICP

TEST(IicpTest, CpsKeepsInformativeDimensions) {
  Rng rng(5);
  const int n = 40;
  Matrix confs(n, sparksim::kNumParams);
  std::vector<double> times(n);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < sparksim::kNumParams; ++d) {
      confs(static_cast<size_t>(i), static_cast<size_t>(d)) =
          rng.NextDouble();
    }
    // Runtime depends strongly on dims 0 and 5 only.
    times[static_cast<size_t>(i)] =
        100.0 - 50.0 * confs(static_cast<size_t>(i), 0) +
        30.0 * confs(static_cast<size_t>(i), 5);
  }
  auto result = Iicp::Run(confs, times);
  ASSERT_TRUE(result.ok());
  const auto& selected = result->selected_params();
  EXPECT_NE(std::find(selected.begin(), selected.end(), 0), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), 5), selected.end());
  // SCC of the causal dimensions should dominate.
  EXPECT_GT(result->spearman_abs()[0], 0.7);
  EXPECT_GT(result->spearman_abs()[5], 0.4);
  EXPECT_GE(result->latent_dim(), 1);
}

TEST(IicpTest, EncodeDimensionMatchesLatent) {
  Rng rng(7);
  const int n = 20;
  Matrix confs(n, sparksim::kNumParams);
  std::vector<double> times(n);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < sparksim::kNumParams; ++d) {
      confs(static_cast<size_t>(i), static_cast<size_t>(d)) = rng.NextDouble();
    }
    times[static_cast<size_t>(i)] = rng.Uniform(50, 500);
  }
  auto result = Iicp::Run(confs, times);
  ASSERT_TRUE(result.ok());
  Vector unit(sparksim::kNumParams, 0.5);
  EXPECT_EQ(result->Encode(unit).size(),
            static_cast<size_t>(result->latent_dim()));
  EXPECT_EQ(result->SelectDims(unit).size(),
            result->selected_params().size());
}

TEST(IicpTest, DecodeSelectedStaysInUnitRange) {
  Rng rng(11);
  const int n = 24;
  Matrix confs(n, sparksim::kNumParams);
  std::vector<double> times(n);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < sparksim::kNumParams; ++d) {
      confs(static_cast<size_t>(i), static_cast<size_t>(d)) = rng.NextDouble();
    }
    times[static_cast<size_t>(i)] =
        100.0 + 80.0 * confs(static_cast<size_t>(i), 3);
  }
  auto result = Iicp::Run(confs, times);
  ASSERT_TRUE(result.ok());
  auto decoded = result->DecodeSelected(result->Encode(confs.Row(0)));
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < decoded->size(); ++i) {
    EXPECT_GE((*decoded)[i], 0.0);
    EXPECT_LE((*decoded)[i], 1.0);
  }
}

TEST(IicpTest, NeverReturnsEmptySelection) {
  Rng rng(13);
  const int n = 20;
  Matrix confs(n, sparksim::kNumParams);
  std::vector<double> times(n, 100.0);  // constant runtime: no correlation
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < sparksim::kNumParams; ++d) {
      confs(static_cast<size_t>(i), static_cast<size_t>(d)) = rng.NextDouble();
    }
  }
  auto result = Iicp::Run(confs, times);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->selected_params().size(), 3u);
}

TEST(IicpTest, RejectsTooFewSamples) {
  EXPECT_FALSE(Iicp::Run(Matrix(2, sparksim::kNumParams), {1.0, 2.0}).ok());
}

// ------------------------------------------------------------------ DAGP

TEST(DagpTest, LearnsDatasizeTrend) {
  Rng rng(17);
  Dagp dagp;
  // Runtime = 10 * ds_normalized, independent of conf.
  for (int i = 0; i < 18; ++i) {
    Vector conf(3);
    for (size_t j = 0; j < 3; ++j) conf[j] = rng.NextDouble();
    const double ds = 100.0 + (i % 5) * 100.0;
    dagp.AddObservation(conf, ds, 10.0 * ds / 1000.0 * 100.0);
  }
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  const Vector probe(3, 0.5);
  const double t100 = dagp.Predict(probe, 100.0).seconds;
  const double t500 = dagp.Predict(probe, 500.0).seconds;
  EXPECT_GT(t500, 2.0 * t100);
}

TEST(DagpTest, EiNonNegativeAndBestTracksMinimum) {
  Rng rng(19);
  Dagp dagp;
  dagp.AddObservation(Vector{0.2}, 100.0, 120.0);
  dagp.AddObservation(Vector{0.8}, 100.0, 60.0);
  dagp.AddObservation(Vector{0.5}, 100.0, 90.0);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  EXPECT_DOUBLE_EQ(dagp.best_seconds(), 60.0);
  EXPECT_GE(dagp.ExpectedImprovement(Vector{0.9}, 100.0), 0.0);
  EXPECT_GE(dagp.RelativeExpectedImprovement(Vector{0.9}, 100.0), 0.0);
  EXPECT_LE(dagp.RelativeExpectedImprovement(Vector{0.9}, 100.0), 1.0);
}

TEST(DagpTest, ClearResetsState) {
  Rng rng(23);
  Dagp dagp;
  dagp.AddObservation(Vector{0.5}, 100.0, 50.0);
  dagp.Clear();
  EXPECT_EQ(dagp.num_observations(), 0);
  EXPECT_FALSE(dagp.Refit(&rng).ok());
}

// --------------------------------------------------------- TuningSession

TEST(TuningSessionTest, ChargesSimulatedTime) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 1);
  const auto app = workloads::HiBenchScan();
  TuningSession session(&sim, app);
  const sparksim::SparkConf conf =
      session.space().Repair(session.space().DefaultConf());
  const EvalRecord rec = *session.Evaluate(conf, 100.0);
  EXPECT_GT(rec.app_seconds, 0.0);
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), rec.app_seconds);
  EXPECT_EQ(session.evaluations(), 1);
  session.Evaluate(conf, 100.0);
  EXPECT_EQ(session.evaluations(), 2);
  session.Reset();
  EXPECT_EQ(session.evaluations(), 0);
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), 0.0);
}

TEST(TuningSessionTest, MeasureFinalIsNotCharged) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 1);
  const auto app = workloads::HiBenchScan();
  TuningSession session(&sim, app);
  session.MeasureFinal(session.space().Repair(session.space().DefaultConf()),
                       100.0);
  EXPECT_DOUBLE_EQ(session.optimization_seconds(), 0.0);
}

TEST(TuningSessionTest, QueryRestrictionAppliesToEvaluate) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 1);
  const auto app = workloads::TpcH();
  TuningSession session(&sim, app);
  const sparksim::SparkConf conf =
      session.space().Repair(session.space().DefaultConf());
  session.RestrictToQueries({0, 1, 2});
  EXPECT_TRUE(session.restricted());
  const EvalRecord rec = *session.Evaluate(conf, 100.0);
  EXPECT_EQ(rec.per_query_seconds.size(), 3u);
  EXPECT_FALSE(rec.full_app);
  session.ClearQueryRestriction();
  const EvalRecord full = *session.Evaluate(conf, 100.0);
  EXPECT_EQ(full.per_query_seconds.size(), 22u);
  EXPECT_TRUE(full.full_app);
}

// ------------------------------------------------------------ LocatTuner

LocatTuner::Options TinyLocatOptions() {
  LocatTuner::Options opts;
  opts.n_qcsa = 8;
  opts.n_iicp = 6;
  opts.lhs_init = 2;
  opts.min_iterations = 3;
  opts.max_iterations = 6;
  opts.warm_iterations = 3;
  opts.candidates = 60;
  opts.seed = 9;
  return opts;
}

TEST(LocatTunerTest, ColdStartProducesAllStages) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 77);
  const auto app = workloads::TpcH();
  TuningSession session(&sim, app);
  LocatTuner tuner(TinyLocatOptions());
  const TuningResult result = tuner.Tune(&session, 100.0);

  EXPECT_EQ(result.tuner_name, "LOCAT");
  EXPECT_GT(result.evaluations, 8);
  EXPECT_GT(result.optimization_seconds, 0.0);
  EXPECT_GT(result.best_observed_seconds, 0.0);
  ASSERT_NE(tuner.qcsa_result(), nullptr);
  ASSERT_NE(tuner.iicp_result(), nullptr);
  // QCSA removed at least one insensitive query from TPC-H.
  EXPECT_LT(tuner.rqa_indices().size(), 22u);
  EXPECT_GE(tuner.rqa_indices().size(), 1u);
  // The tuned configuration is valid.
  EXPECT_TRUE(session.space().Validate(result.best_conf).ok());
}

TEST(LocatTunerTest, BeatsDefaultConfiguration) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 78);
  const auto app = workloads::HiBenchJoin();
  TuningSession session(&sim, app);
  LocatTuner tuner(TinyLocatOptions());
  const TuningResult result = tuner.Tune(&session, 200.0);
  const double tuned = session.MeasureFinal(result.best_conf, 200.0)
                           .total_seconds;
  const double dflt =
      session
          .MeasureFinal(session.space().Repair(session.space().DefaultConf()),
                        200.0)
          .total_seconds;
  EXPECT_LT(tuned, dflt);
}

TEST(LocatTunerTest, WarmStartUsesFewerEvaluationsThanCold) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 79);
  const auto app = workloads::TpcH();
  TuningSession session(&sim, app);
  LocatTuner tuner(TinyLocatOptions());
  const TuningResult cold = tuner.Tune(&session, 100.0);
  const TuningResult warm = tuner.Tune(&session, 300.0);
  EXPECT_LT(warm.evaluations, cold.evaluations);
}

TEST(LocatTunerTest, DeterministicGivenSeeds) {
  const auto cluster = sparksim::X86Cluster();
  const auto app = workloads::HiBenchAggregation();
  auto run = [&]() {
    sparksim::ClusterSimulator sim(cluster, 80);
    TuningSession session(&sim, app);
    LocatTuner tuner(TinyLocatOptions());
    return tuner.Tune(&session, 200.0);
  };
  const TuningResult a = run();
  const TuningResult b = run();
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_DOUBLE_EQ(a.best_observed_seconds, b.best_observed_seconds);
  EXPECT_TRUE(a.best_conf == b.best_conf);
}

TEST(LocatTunerTest, ApVariantSkipsIicp) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 81);
  const auto app = workloads::HiBenchAggregation();
  TuningSession session(&sim, app);
  LocatTuner::Options opts = TinyLocatOptions();
  opts.enable_iicp = false;
  LocatTuner tuner(opts);
  EXPECT_EQ(tuner.name(), "LOCAT-AP");
  tuner.Tune(&session, 100.0);
  EXPECT_EQ(tuner.iicp_result(), nullptr);
  EXPECT_NE(tuner.qcsa_result(), nullptr);
}

TEST(LocatTunerTest, QcsaDisabledKeepsAllQueries) {
  const auto cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator sim(cluster, 82);
  const auto app = workloads::TpcH();
  TuningSession session(&sim, app);
  LocatTuner::Options opts = TinyLocatOptions();
  opts.enable_qcsa = false;
  LocatTuner tuner(opts);
  tuner.Tune(&session, 100.0);
  EXPECT_EQ(tuner.rqa_indices().size(), 22u);
}

}  // namespace
}  // namespace locat::core
