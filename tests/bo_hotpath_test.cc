// Tests of the BO hot-path performance layer: batched GP predictions,
// the kernel-computation cache, and end-to-end thread-count invariance
// of the tuner. The contract under test is "fast, but bit-for-bit the
// same answer" — every optimization here must be invisible in results.
#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dagp.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "math/cholesky.h"
#include "math/matrix.h"
#include "ml/ei_mcmc.h"
#include "ml/gp.h"
#include "ml/gp_mode.h"
#include "ml/sparse_gp.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

using math::Matrix;
using math::Vector;
using ml::GaussianProcess;
using ml::GpHyperparams;
using ml::GpKernelCache;

/// Deterministic synthetic regression set: smooth target + mild noise.
void MakeDataset(size_t n, size_t d, Matrix* x, Vector* y) {
  Rng rng(417);
  *x = Matrix(n, d);
  *y = Vector(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double v = rng.NextDouble();
      (*x)(i, j) = v;
      s += std::sin(3.0 * v + static_cast<double>(j));
    }
    (*y)[i] = s + 0.05 * rng.NextGaussian();
  }
}

GpHyperparams MakeHyperparams(size_t d) {
  GpHyperparams hp = GpHyperparams::Default(d);
  for (size_t j = 0; j < d; ++j) {
    hp.log_lengthscales[j] = -1.0 + 0.07 * static_cast<double>(j);
  }
  hp.log_signal_variance = 0.3;
  hp.log_noise_variance = -3.5;
  return hp;
}

// --------------------------------------------------- SolveLowerMatrix

TEST(SolveLowerMatrixTest, MatchesPerColumnSolveLower) {
  Rng rng(11);
  const size_t n = 24;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = rng.NextDouble() - 0.5;
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) += static_cast<double>(n);  // diagonally dominant => SPD
  }
  const auto chol = math::Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());

  const size_t m = 7;
  Matrix b(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < m; ++c) b(i, c) = rng.NextGaussian();
  }
  const Matrix y = chol->SolveLowerMatrix(b);
  ASSERT_EQ(y.rows(), n);
  ASSERT_EQ(y.cols(), m);
  for (size_t c = 0; c < m; ++c) {
    Vector col(n);
    for (size_t i = 0; i < n; ++i) col[i] = b(i, c);
    const Vector ref = chol->SolveLower(col);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y(i, c), ref[i], 1e-12) << "col " << c << " row " << i;
    }
  }
}

// -------------------------------------------------------- PredictBatch

TEST(PredictBatchTest, MatchesPerPointPredict) {
  Matrix x;
  Vector y;
  MakeDataset(60, 9, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(9)).ok());

  Rng rng(5);
  const size_t m = 200;
  Matrix xs(m, 9);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 9; ++j) xs(i, j) = rng.NextDouble();
  }
  const GaussianProcess::BatchPrediction batch = gp.PredictBatch(xs);
  ASSERT_EQ(batch.mean.size(), m);
  ASSERT_EQ(batch.variance.size(), m);
  for (size_t i = 0; i < m; ++i) {
    const auto p = gp.Predict(xs.Row(i));
    EXPECT_NEAR(batch.mean[i], p.mean, 1e-12) << "candidate " << i;
    EXPECT_NEAR(batch.variance[i], p.variance, 1e-12) << "candidate " << i;
    EXPECT_GE(batch.variance[i], 0.0);
  }
}

TEST(PredictBatchTest, AnyChunkingIsBitIdentical) {
  Matrix x;
  Vector y;
  MakeDataset(40, 6, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(6)).ok());

  Rng rng(6);
  const size_t m = 64;
  Matrix xs(m, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = rng.NextDouble();
  }
  const auto whole = gp.PredictBatch(xs);
  // Split into two uneven chunks; rows must come out bit-identical.
  const size_t cut = 19;
  Matrix lo(cut, 6);
  Matrix hi(m - cut, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      if (i < cut) {
        lo(i, j) = xs(i, j);
      } else {
        hi(i - cut, j) = xs(i, j);
      }
    }
  }
  const auto a = gp.PredictBatch(lo);
  const auto b = gp.PredictBatch(hi);
  for (size_t i = 0; i < m; ++i) {
    const double mean = i < cut ? a.mean[i] : b.mean[i - cut];
    const double var = i < cut ? a.variance[i] : b.variance[i - cut];
    EXPECT_EQ(whole.mean[i], mean) << "candidate " << i;
    EXPECT_EQ(whole.variance[i], var) << "candidate " << i;
  }
}

TEST(PredictTest, ReferenceImplementationAgrees) {
  Matrix x;
  Vector y;
  MakeDataset(50, 7, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(7)).ok());
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    Vector q(7);
    for (size_t j = 0; j < 7; ++j) q[j] = rng.NextDouble();
    const auto fast = gp.Predict(q);
    const auto ref = gp.PredictReference(q);
    EXPECT_NEAR(fast.mean, ref.mean, 1e-10);
    EXPECT_NEAR(fast.variance, ref.variance, 1e-10);
  }
}

// ------------------------------------------------------- GpKernelCache

TEST(GpKernelCacheTest, LogMarginalLikelihoodMatchesReference) {
  Matrix x;
  Vector y;
  MakeDataset(35, 8, &x, &y);
  GpKernelCache cache(x, y);
  for (int t = 0; t < 5; ++t) {
    GpHyperparams hp = MakeHyperparams(8);
    hp.log_signal_variance += 0.11 * t;
    hp.log_noise_variance -= 0.2 * t;
    const double cached = cache.LogMarginalLikelihood(hp);
    const double ref =
        GaussianProcess::ComputeLogMarginalLikelihood(x, y, hp);
    EXPECT_NEAR(cached, ref, 1e-8 * std::abs(ref)) << "variant " << t;
  }
}

TEST(GpKernelCacheTest, CacheFitMatchesDirectFit) {
  Matrix x;
  Vector y;
  MakeDataset(30, 5, &x, &y);
  const GpHyperparams hp = MakeHyperparams(5);
  GaussianProcess direct;
  ASSERT_TRUE(direct.Fit(x, y, hp).ok());
  GpKernelCache cache(x, y);
  GaussianProcess via_cache;
  ASSERT_TRUE(via_cache.Fit(cache, hp).ok());
  Rng rng(8);
  for (int t = 0; t < 20; ++t) {
    Vector q(5);
    for (size_t j = 0; j < 5; ++j) q[j] = rng.NextDouble();
    const auto a = direct.Predict(q);
    const auto b = via_cache.Predict(q);
    EXPECT_NEAR(a.mean, b.mean, 1e-10);
    EXPECT_NEAR(a.variance, b.variance, 1e-10);
  }
}

TEST(GpKernelCacheTest, AdoptFitEquivalentToFreshFit) {
  Matrix x;
  Vector y;
  MakeDataset(30, 5, &x, &y);
  const GpHyperparams hp = MakeHyperparams(5);
  GpKernelCache cache(x, y);
  // A likelihood evaluation memoizes the factorization for exactly hp...
  const double lml = cache.LogMarginalLikelihood(hp);
  ASSERT_TRUE(std::isfinite(lml));
  auto fact = cache.TakeMemoized(hp.Flatten());
  ASSERT_TRUE(fact.has_value());
  EXPECT_DOUBLE_EQ(fact->log_marginal_likelihood, lml);

  GaussianProcess adopted;
  ASSERT_TRUE(adopted.AdoptFit(cache, hp, std::move(*fact)).ok());
  GaussianProcess fresh;
  ASSERT_TRUE(fresh.Fit(cache, hp).ok());
  EXPECT_DOUBLE_EQ(adopted.LogMarginalLikelihood(),
                   fresh.LogMarginalLikelihood());
  Rng rng(9);
  for (int t = 0; t < 20; ++t) {
    Vector q(5);
    for (size_t j = 0; j < 5; ++j) q[j] = rng.NextDouble();
    const auto a = adopted.Predict(q);
    const auto b = fresh.Predict(q);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.variance, b.variance);
  }
}

TEST(GpKernelCacheTest, TakeMemoizedMissesOnDifferentHyperparams) {
  Matrix x;
  Vector y;
  MakeDataset(12, 3, &x, &y);
  GpKernelCache cache(x, y);
  const GpHyperparams hp = MakeHyperparams(3);
  cache.LogMarginalLikelihood(hp);
  GpHyperparams other = hp;
  other.log_noise_variance += 1e-9;
  EXPECT_FALSE(cache.TakeMemoized(other.Flatten()).has_value());
  // The miss must not have consumed the memo.
  EXPECT_TRUE(cache.TakeMemoized(hp.Flatten()).has_value());
  // ...but a hit does: a second take misses.
  EXPECT_FALSE(cache.TakeMemoized(hp.Flatten()).has_value());
}

TEST(GpKernelCacheTest, DegenerateKernelStillFactorsWithJitter) {
  // Duplicate points + near-zero noise force the jitter path (satellite:
  // the static likelihood and Fit must use the same regularization).
  Matrix x(6, 2);
  Vector y(6);
  for (size_t i = 0; i < 6; ++i) {
    x(i, 0) = 0.5;
    x(i, 1) = 0.5;
    y[i] = 1.0;
  }
  GpHyperparams hp = GpHyperparams::Default(2);
  hp.log_noise_variance = -40.0;
  GpKernelCache cache(x, y);
  const double cached = cache.LogMarginalLikelihood(hp);
  const double ref = GaussianProcess::ComputeLogMarginalLikelihood(x, y, hp);
  EXPECT_TRUE(std::isfinite(cached));
  EXPECT_TRUE(std::isfinite(ref));
  EXPECT_NEAR(cached, ref, 1e-6 * std::max(1.0, std::abs(ref)));
}

// ------------------------------------------------------------- EiMcmc

TEST(EiMcmcBatchTest, BatchAcquisitionMatchesPerCandidate) {
  Matrix x;
  Vector y;
  MakeDataset(25, 6, &x, &y);
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 4;
  opts.burn_in = 4;
  ml::EiMcmc model(opts);
  Rng rng(31);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());

  Rng crng(32);
  const size_t m = 80;
  Matrix xs(m, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = crng.NextDouble();
  }
  const Vector eis = model.AcquisitionValueBatch(xs);
  const auto preds = model.PredictAveragedBatch(xs);
  ASSERT_EQ(eis.size(), m);
  for (size_t i = 0; i < m; ++i) {
    const Vector q = xs.Row(i);
    EXPECT_NEAR(eis[i], model.AcquisitionValue(q),
                1e-12 * std::max(1.0, std::abs(eis[i])));
    const auto p = model.PredictAveraged(q);
    EXPECT_NEAR(preds.mean[i], p.mean, 1e-10);
    EXPECT_NEAR(preds.variance[i], p.variance, 1e-10);
  }
}

TEST(EiMcmcBatchTest, FastPathInvariantToThreadCount) {
  Matrix x;
  Vector y;
  MakeDataset(25, 6, &x, &y);
  Matrix xs(50, 6);
  Rng crng(33);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = crng.NextDouble();
  }
  auto run = [&](int threads) {
    common::ThreadPool::SetGlobalThreads(threads);
    ml::EiMcmc::Options opts;
    opts.num_hyper_samples = 4;
    opts.burn_in = 4;
    ml::EiMcmc model(opts);
    Rng rng(34);
    EXPECT_TRUE(model.Fit(x, y, &rng).ok());
    return model.AcquisitionValueBatch(xs);
  };
  const Vector one = run(1);
  const Vector four = run(4);
  const Vector eight = run(8);
  common::ThreadPool::SetGlobalThreads(0);  // restore default
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "candidate " << i;
    EXPECT_EQ(one[i], eight[i]) << "candidate " << i;
  }
}

TEST(EiMcmcBatchTest, LegacyPathStillWorks) {
  Matrix x;
  Vector y;
  MakeDataset(20, 4, &x, &y);
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 3;
  opts.burn_in = 3;
  opts.fast_path = false;
  ml::EiMcmc legacy(opts);
  Rng rng(35);
  ASSERT_TRUE(legacy.Fit(x, y, &rng).ok());
  EXPECT_TRUE(legacy.fitted());
  EXPECT_GT(static_cast<int>(legacy.ensemble().size()), 0);
  Vector q(4, 0.4);
  EXPECT_GE(legacy.AcquisitionValue(q), 0.0);
}

// ------------------------------------------ incremental surrogate layer

TEST(AppendFitTest, RepeatedAppendMatchesOneFit) {
  const size_t n = 48, d = 6, n0 = 20;
  Matrix x;
  Vector y;
  MakeDataset(n, d, &x, &y);
  const GpHyperparams hp = MakeHyperparams(d);

  Matrix x0(n0, d);
  Vector y0(n0);
  for (size_t i = 0; i < n0; ++i) {
    x0.SetRow(i, x.Row(i));
    y0[i] = y[i];
  }
  GaussianProcess incremental;
  ASSERT_TRUE(incremental.Fit(x0, y0, hp).ok());
  for (size_t i = n0; i < n; ++i) {
    ASSERT_TRUE(incremental.AppendFit(x.Row(i), y[i]).ok()) << "append " << i;
  }
  ASSERT_EQ(incremental.num_points(), n);

  GaussianProcess full;
  ASSERT_TRUE(full.Fit(x, y, hp).ok());

  EXPECT_NEAR(incremental.LogMarginalLikelihood(), full.LogMarginalLikelihood(),
              1e-7 * std::abs(full.LogMarginalLikelihood()));
  Rng rng(77);
  for (int t = 0; t < 40; ++t) {
    Vector q(d);
    for (size_t j = 0; j < d; ++j) q[j] = rng.NextDouble();
    const auto a = incremental.Predict(q);
    const auto b = full.Predict(q);
    EXPECT_NEAR(a.mean, b.mean, 1e-8 * std::max(1.0, std::abs(b.mean)));
    EXPECT_NEAR(a.variance, b.variance,
                1e-8 * std::max(1.0, std::abs(b.variance)));
  }
}

TEST(AppendFitTest, AppendAfterJitterRetryMatchesConsistentlyJitteredRefit) {
  // Regression for the jitter contract: a fit that needed the jitter-retry
  // path must append with the SAME jitter on the new diagonal, so the
  // extended factor equals a from-scratch factor of the extended kernel
  // with that jitter applied. (Before the contract the appended diagonal
  // re-derived nothing and silently dropped the regularization.)
  const size_t n = 12, d = 2;
  Matrix x(n, d);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    // Duplicate inputs + near-zero noise: the kernel matrix is singular and
    // FactorWithJitter must escalate.
    x(i, 0) = 0.5;
    x(i, 1) = 0.5;
    y[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  GpHyperparams hp = GpHyperparams::Default(d);
  hp.log_noise_variance = -40.0;
  // Large signal variance pushes the kernel builder's 1e-10 diagonal floor
  // below one ulp of the diagonal, so the rank-1 duplicate matrix really is
  // numerically singular and the factorization must retry with jitter.
  hp.log_signal_variance = 20.0;

  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, hp).ok());
  const double jitter = gp.applied_jitter();
  ASSERT_GT(jitter, 0.0) << "test requires the jitter-retry path";

  Vector x_new(d);
  x_new[0] = 0.52;
  x_new[1] = 0.48;
  const double y_new = 1.2;
  ASSERT_TRUE(gp.AppendFit(x_new, y_new).ok());
  EXPECT_EQ(gp.applied_jitter(), jitter);  // appends never change the jitter

  // Reference: the extended kernel with exactly the same jitter, factored
  // from scratch.
  Matrix x_ext(n + 1, d);
  Vector y_ext(n + 1);
  for (size_t i = 0; i < n; ++i) {
    x_ext.SetRow(i, x.Row(i));
    y_ext[i] = y[i];
  }
  x_ext.SetRow(n, x_new);
  y_ext[n] = y_new;
  GpKernelCache ext_cache(x_ext, y_ext);
  Matrix k_ext = ext_cache.BuildKernel(hp);
  k_ext.AddToDiagonal(jitter);
  auto ref_chol = math::Cholesky::Factor(k_ext);
  ASSERT_TRUE(ref_chol.ok())
      << "extended kernel must be SPD under the original jitter";

  // The factors agree to rounding at the matrix's scale. (The jittered
  // system is deliberately near-singular — conditioning ~ diag/jitter —
  // so sub-pivot entries carry cancellation noise; the meaningful
  // tolerance is relative to the column scale sqrt(diag), not to the
  // entry itself. Tight equality under good conditioning is covered by
  // RepeatedAppendMatchesOneFit.)
  const Matrix& appended_l = gp.factor();
  ASSERT_EQ(appended_l.rows(), n + 1);
  const double col_scale = std::sqrt(k_ext(0, 0));
  for (size_t i = 0; i <= n; ++i)
    for (size_t j = 0; j <= i; ++j)
      EXPECT_NEAR(appended_l(i, j), ref_chol->L()(i, j), 1e-7 * col_scale)
          << "L(" << i << "," << j << ")";

  // The posterior stays sane: predicting at the duplicated input recovers
  // (approximately) the mean of the duplicated targets, with a finite
  // non-negative variance.
  Vector q(d);
  q[0] = 0.5;
  q[1] = 0.5;
  const auto pred = gp.Predict(q);
  double y_bar = 0.0;
  for (size_t i = 0; i < n; ++i) y_bar += y[i] / static_cast<double>(n);
  EXPECT_TRUE(std::isfinite(pred.mean));
  EXPECT_NEAR(pred.mean, y_bar, 0.2);
  EXPECT_GE(pred.variance, 0.0);
  EXPECT_TRUE(std::isfinite(pred.variance));
}

TEST(AppendFitTest, CacheAppendExtendsMemoizedFactorization) {
  const size_t n = 30, d = 5;
  Matrix x;
  Vector y;
  MakeDataset(n + 2, d, &x, &y);
  Matrix x0(n, d);
  Vector y0(n);
  for (size_t i = 0; i < n; ++i) {
    x0.SetRow(i, x.Row(i));
    y0[i] = y[i];
  }
  const GpHyperparams hp = MakeHyperparams(d);

  GpKernelCache cache(x0, y0);
  ASSERT_TRUE(std::isfinite(cache.LogMarginalLikelihood(hp)));  // memoize
  cache.AppendObservation(x.Row(n), y[n]);
  cache.AppendObservation(x.Row(n + 1), y[n + 1]);
  ASSERT_EQ(cache.num_points(), n + 2);

  // The grown cache must be indistinguishable from one built on the full
  // data: identical pair structure (bit-exact kernel) ...
  GpKernelCache fresh(x, y);
  const Matrix grown_k = cache.BuildKernel(hp);
  const Matrix fresh_k = fresh.BuildKernel(hp);
  EXPECT_EQ(grown_k.MaxAbsDiff(fresh_k), 0.0);
  EXPECT_EQ(cache.standardized_y().size(), fresh.standardized_y().size());
  for (size_t i = 0; i < n + 2; ++i) {
    EXPECT_EQ(cache.standardized_y()[i], fresh.standardized_y()[i]);
  }

  // ... and the memoized factorization was EXTENDED, not discarded: it
  // answers for the original hyperparameters with the extended-data
  // likelihood.
  const double grown_lml = cache.LogMarginalLikelihood(hp);
  const double fresh_lml = fresh.LogMarginalLikelihood(hp);
  EXPECT_NEAR(grown_lml, fresh_lml, 1e-7 * std::abs(fresh_lml));

  auto fact = cache.TakeMemoized(hp.Flatten());
  ASSERT_TRUE(fact.has_value()) << "append must keep the memo key valid";
  GaussianProcess adopted;
  ASSERT_TRUE(adopted.AdoptFit(cache, hp, std::move(*fact)).ok());
  GaussianProcess direct;
  ASSERT_TRUE(direct.Fit(fresh, hp).ok());
  Rng rng(91);
  for (int t = 0; t < 20; ++t) {
    Vector q(d);
    for (size_t j = 0; j < d; ++j) q[j] = rng.NextDouble();
    const auto a = adopted.Predict(q);
    const auto b = direct.Predict(q);
    EXPECT_NEAR(a.mean, b.mean, 1e-8 * std::max(1.0, std::abs(b.mean)));
    EXPECT_NEAR(a.variance, b.variance,
                1e-8 * std::max(1.0, std::abs(b.variance)));
  }
}

TEST(AppendFitTest, EiMcmcAppendMatchesPerMemberAppendAndThreadCounts) {
  Matrix x;
  Vector y;
  MakeDataset(26, 5, &x, &y);
  Matrix x0(24, 5);
  Vector y0(24);
  for (size_t i = 0; i < 24; ++i) {
    x0.SetRow(i, x.Row(i));
    y0[i] = y[i];
  }
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 4;
  opts.burn_in = 4;

  auto fit_and_append = [&](int threads) {
    common::ThreadPool::SetGlobalThreads(threads);
    ml::EiMcmc model(opts);
    Rng rng(52);
    EXPECT_TRUE(model.Fit(x0, y0, &rng).ok());
    EXPECT_TRUE(model.AppendObservation(x.Row(24), y[24]).ok());
    EXPECT_TRUE(model.AppendObservation(x.Row(25), y[25]).ok());
    return model;
  };
  const ml::EiMcmc one = fit_and_append(1);
  const ml::EiMcmc eight = fit_and_append(8);
  common::ThreadPool::SetGlobalThreads(0);  // restore default

  ASSERT_EQ(one.ensemble().size(), eight.ensemble().size());
  // Appending consumed no RNG and ran per-member: each member equals a
  // manual AppendFit at the same hyperparameters, and the whole model is
  // bit-identical across thread counts.
  for (size_t k = 0; k < one.ensemble().size(); ++k) {
    ASSERT_EQ(one.ensemble()[k].num_points(), 26u);
    GaussianProcess manual;
    ASSERT_TRUE(manual.Fit(x0, y0, one.ensemble()[k].hyperparams()).ok());
    ASSERT_TRUE(manual.AppendFit(x.Row(24), y[24]).ok());
    ASSERT_TRUE(manual.AppendFit(x.Row(25), y[25]).ok());
    Rng rng(53);
    for (int t = 0; t < 10; ++t) {
      Vector q(5);
      for (size_t j = 0; j < 5; ++j) q[j] = rng.NextDouble();
      const auto a = one.ensemble()[k].Predict(q);
      const auto b = eight.ensemble()[k].Predict(q);
      EXPECT_EQ(a.mean, b.mean) << "member " << k;
      EXPECT_EQ(a.variance, b.variance) << "member " << k;
      const auto m = manual.Predict(q);
      EXPECT_NEAR(a.mean, m.mean, 1e-10 * std::max(1.0, std::abs(m.mean)));
      EXPECT_NEAR(a.variance, m.variance,
                  1e-10 * std::max(1.0, std::abs(m.variance)));
    }
  }
}

// Synthetic DAGP observation stream shared by the mode tests below.
void FeedObservations(core::Dagp* dagp, size_t count, size_t dim,
                      uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Vector conf(dim);
    double s = 0.0;
    for (size_t j = 0; j < dim; ++j) {
      conf[j] = rng.NextDouble();
      s += std::sin(2.5 * conf[j] + static_cast<double>(j));
    }
    const double ds = 80.0 + 40.0 * rng.NextDouble();
    const double seconds = 60.0 + 25.0 * s * s + 2.0 * rng.NextDouble();
    dagp->AddObservation(conf, ds, seconds);
  }
}

TEST(AppendFitTest, DagpIncrementalBitIdenticalToExactBelowThreshold) {
  // Below the switch threshold the incremental mode must run the exact
  // full-refit path, consuming identical RNG draws — recommendations are
  // bit-exact, not merely close.
  auto run = [&](ml::GpMode mode) {
    core::Dagp::Options opts;
    opts.gp_mode = mode;
    opts.gp_switch_threshold = 100;  // history stays below
    opts.ei.num_hyper_samples = 3;
    opts.ei.burn_in = 4;
    core::Dagp dagp(opts);
    FeedObservations(&dagp, 30, 4, 1234);
    Rng rng(55);
    EXPECT_TRUE(dagp.Refit(&rng).ok());
    EXPECT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kFull);
    Vector probe(4, 0.3);
    return std::pair<double, double>(dagp.ExpectedImprovement(probe, 100.0),
                                     dagp.Predict(probe, 100.0).seconds);
  };
  const auto exact = run(ml::GpMode::kExact);
  const auto incremental = run(ml::GpMode::kIncremental);
  const auto sparse = run(ml::GpMode::kSparse);
  EXPECT_EQ(exact.first, incremental.first);
  EXPECT_EQ(exact.second, incremental.second);
  EXPECT_EQ(exact.first, sparse.first);
  EXPECT_EQ(exact.second, sparse.second);
}

TEST(AppendFitTest, DagpIncrementalAppendsAboveThresholdMatchFrozenRefit) {
  core::Dagp::Options opts;
  opts.gp_mode = ml::GpMode::kIncremental;
  opts.gp_switch_threshold = 16;
  opts.ei.num_hyper_samples = 3;
  opts.ei.burn_in = 4;
  core::Dagp dagp(opts);
  FeedObservations(&dagp, 16, 3, 99);
  Rng rng(56);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  ASSERT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kFull);

  FeedObservations(&dagp, 8, 3, 100);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  EXPECT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kAppend);
  EXPECT_EQ(dagp.model_observations(), 24u);

  // Every ensemble member must equal a from-scratch fixed-hyperparameter
  // fit on the full history (the appends only skip the MCMC, never change
  // the math). Reconstruct the assembled inputs the same way Dagp does.
  FeedObservations(&dagp, 1, 3, 101);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  ASSERT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kAppend);
  ASSERT_EQ(dagp.model_observations(), 25u);

  Matrix all(25, 4);
  Vector ylog(25);
  {
    Rng r1(99), r2(100), r3(101);
    size_t row = 0;
    for (Rng* r : {&r1, &r2, &r3}) {
      const size_t count = r == &r1 ? 16 : (r == &r2 ? 8 : 1);
      for (size_t i = 0; i < count; ++i) {
        double s = 0.0;
        for (size_t j = 0; j < 3; ++j) {
          const double v = r->NextDouble();
          all(row, j) = v;
          s += std::sin(2.5 * v + static_cast<double>(j));
        }
        const double ds = 80.0 + 40.0 * r->NextDouble();
        all(row, 3) = ds / 1000.0;  // Dagp's default datasize scale
        ylog[row] = std::log(60.0 + 25.0 * s * s + 2.0 * r->NextDouble());
        ++row;
      }
    }
    ASSERT_EQ(row, 25u);
  }
  for (const auto& member : dagp.model().ensemble()) {
    GaussianProcess reference;
    ASSERT_TRUE(reference.Fit(all, ylog, member.hyperparams()).ok());
    Rng prng(57);
    for (int t = 0; t < 10; ++t) {
      Vector q(4);
      for (size_t j = 0; j < 4; ++j) q[j] = prng.NextDouble();
      const auto a = member.Predict(q);
      const auto b = reference.Predict(q);
      EXPECT_NEAR(a.mean, b.mean, 1e-8 * std::max(1.0, std::abs(b.mean)));
      EXPECT_NEAR(a.variance, b.variance,
                  1e-8 * std::max(1.0, std::abs(b.variance)));
    }
  }
}

TEST(SparseGpTest, GreedyMaxMinSelectionProperties) {
  Rng rng(61);
  const size_t n = 50, d = 4;
  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < d; ++j) x(i, j) = rng.NextDouble();

  const size_t seed = 17;
  const auto subset = ml::GreedyMaxMinSubset(x, 12, seed);
  ASSERT_EQ(subset.size(), 12u);
  // Sorted ascending, unique, seed included.
  for (size_t i = 1; i < subset.size(); ++i)
    EXPECT_LT(subset[i - 1], subset[i]);
  EXPECT_TRUE(std::find(subset.begin(), subset.end(), seed) != subset.end());

  // m >= n returns everything.
  const auto everything = ml::GreedyMaxMinSubset(x, n + 5, 0);
  ASSERT_EQ(everything.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(everything[i], i);

  // Degenerate duplicates must not loop or repeat indices.
  Matrix dup(8, 2);
  for (size_t i = 0; i < 8; ++i) {
    dup(i, 0) = 0.5;
    dup(i, 1) = 0.5;
  }
  const auto dsel = ml::GreedyMaxMinSubset(dup, 4, 2);
  ASSERT_EQ(dsel.size(), 4u);
  for (size_t i = 1; i < dsel.size(); ++i) EXPECT_LT(dsel[i - 1], dsel[i]);

  // Farthest-point property on a line: selecting 3 of {0, 0.1, ..., 1.0}
  // from seed 0 must pick both extremes.
  Matrix line(11, 1);
  for (size_t i = 0; i < 11; ++i) line(i, 0) = 0.1 * static_cast<double>(i);
  const auto lsel = ml::GreedyMaxMinSubset(line, 3, 0);
  ASSERT_EQ(lsel.size(), 3u);
  EXPECT_EQ(lsel[0], 0u);
  EXPECT_EQ(lsel[2], 10u);  // the far end is always the first pick
}

TEST(SparseGpTest, DagpSparseModeRefitsOnIncumbentSeededSubset) {
  core::Dagp::Options opts;
  opts.gp_mode = ml::GpMode::kSparse;
  opts.gp_switch_threshold = 20;
  opts.sparse_inducing = 12;
  opts.ei.num_hyper_samples = 3;
  opts.ei.burn_in = 4;
  core::Dagp dagp(opts);
  FeedObservations(&dagp, 40, 3, 7);
  Rng rng(62);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  EXPECT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kSparse);
  EXPECT_EQ(dagp.model_observations(), 12u);
  // The incumbent seeds the subset, so the model's best observed target
  // is the GLOBAL best, not merely the subset's.
  EXPECT_EQ(std::exp(dagp.model().best_observed()), dagp.best_seconds());
  // The sparse surrogate stays usable for acquisition + prediction.
  Vector probe(3, 0.5);
  EXPECT_TRUE(std::isfinite(dagp.ExpectedImprovement(probe, 100.0)));
  EXPECT_GT(dagp.Predict(probe, 100.0).seconds, 0.0);
}

// ------------------------------------------- end-to-end tuner invariance

TEST(BoHotPathTest, TunerOutputBitIdenticalAcrossThreadCounts) {
  const auto cluster = sparksim::X86Cluster();
  const auto app = workloads::HiBenchAggregation();
  auto run = [&](int threads) {
    common::ThreadPool::SetGlobalThreads(threads);
    sparksim::ClusterSimulator sim(cluster, 90);
    core::TuningSession session(&sim, app);
    core::LocatTuner::Options opts;
    opts.n_qcsa = 8;
    opts.n_iicp = 6;
    opts.lhs_init = 2;
    opts.min_iterations = 3;
    opts.max_iterations = 6;
    opts.warm_iterations = 3;
    opts.candidates = 60;
    opts.seed = 9;
    core::LocatTuner tuner(opts);
    return tuner.Tune(&session, 200.0);
  };
  const core::TuningResult one = run(1);
  const core::TuningResult four = run(4);
  const core::TuningResult eight = run(8);
  common::ThreadPool::SetGlobalThreads(0);  // restore default

  EXPECT_EQ(one.evaluations, four.evaluations);
  EXPECT_EQ(one.evaluations, eight.evaluations);
  EXPECT_EQ(one.best_observed_seconds, four.best_observed_seconds);
  EXPECT_EQ(one.best_observed_seconds, eight.best_observed_seconds);
  EXPECT_EQ(one.optimization_seconds, four.optimization_seconds);
  EXPECT_EQ(one.optimization_seconds, eight.optimization_seconds);
  EXPECT_TRUE(one.best_conf == four.best_conf);
  EXPECT_TRUE(one.best_conf == eight.best_conf);
}

TEST(BoHotPathTest, TunerOutputBitIdenticalAcrossGpModesAtSmallN) {
  // A short tune never crosses the gp switch threshold (default 240), so
  // every --gp-mode must take the identical exact full-refit path and
  // reproduce the recommendation bit-for-bit — at every thread count.
  const auto cluster = sparksim::X86Cluster();
  const auto app = workloads::HiBenchAggregation();
  auto run = [&](ml::GpMode mode, int threads) {
    ml::SetGpMode(mode);
    common::ThreadPool::SetGlobalThreads(threads);
    sparksim::ClusterSimulator sim(cluster, 90);
    core::TuningSession session(&sim, app);
    core::LocatTuner::Options opts;
    opts.n_qcsa = 8;
    opts.n_iicp = 6;
    opts.lhs_init = 2;
    opts.min_iterations = 3;
    opts.max_iterations = 5;
    opts.warm_iterations = 3;
    opts.candidates = 60;
    opts.seed = 9;
    core::LocatTuner tuner(opts);
    return tuner.Tune(&session, 200.0);
  };
  const core::TuningResult baseline = run(ml::GpMode::kExact, 1);
  for (const ml::GpMode mode :
       {ml::GpMode::kExact, ml::GpMode::kIncremental, ml::GpMode::kSparse}) {
    for (const int threads : {1, 4, 8}) {
      if (mode == ml::GpMode::kExact && threads == 1) continue;
      const core::TuningResult r = run(mode, threads);
      EXPECT_EQ(baseline.evaluations, r.evaluations)
          << ml::GpModeName(mode) << " x " << threads << " threads";
      EXPECT_EQ(baseline.best_observed_seconds, r.best_observed_seconds)
          << ml::GpModeName(mode) << " x " << threads << " threads";
      EXPECT_TRUE(baseline.best_conf == r.best_conf)
          << ml::GpModeName(mode) << " x " << threads << " threads";
    }
  }
  ml::SetGpMode(ml::GpMode::kExact);  // restore the default dispatch
  common::ThreadPool::SetGlobalThreads(0);
}

TEST(BoHotPathTest, LongHorizonIncrementalTuneCompletes) {
  // Acceptance: an e2e long-horizon tune with >= 1000 observations in
  // incremental mode. Past the (lowered) switch threshold every Refit
  // must be absorbed by rank-1 appends — no O(n^3) refits, no MCMC — and
  // the surrogate must stay usable for EI-driven proposals throughout.
  core::Dagp::Options opts;
  opts.gp_mode = ml::GpMode::kIncremental;
  opts.gp_switch_threshold = 64;
  opts.ei.num_hyper_samples = 2;
  opts.ei.burn_in = 4;
  core::Dagp dagp(opts);

  const size_t d = 4;
  auto objective = [](const Vector& c, double ds) {
    double s = 0.0;
    for (size_t j = 0; j < c.size(); ++j) {
      const double t = c[j] - 0.2 - 0.1 * static_cast<double>(j);
      s += t * t;
    }
    return 30.0 + 120.0 * s + 0.05 * ds;
  };
  Rng rng(2026);
  auto add_random = [&](size_t count) {
    for (size_t i = 0; i < count; ++i) {
      Vector c(d);
      for (size_t j = 0; j < d; ++j) c[j] = rng.NextDouble();
      const double ds = 80.0 + 40.0 * rng.NextDouble();
      dagp.AddObservation(c, ds, objective(c, ds));
    }
  };

  add_random(opts.gp_switch_threshold);
  ASSERT_TRUE(dagp.Refit(&rng).ok());
  ASSERT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kFull);

  size_t append_refits = 0;
  while (dagp.num_observations() < 1050) {
    // One EI-proposed point per round (the tuner's candidate sweep in
    // miniature), plus random exploration to advance the horizon fast.
    std::vector<Vector> cands(16, Vector(d));
    for (auto& c : cands)
      for (size_t j = 0; j < d; ++j) c[j] = rng.NextDouble();
    const Vector ei = dagp.ExpectedImprovementBatch(cands, 100.0);
    size_t best = 0;
    for (size_t i = 1; i < cands.size(); ++i)
      if (ei[i] > ei[best]) best = i;
    ASSERT_TRUE(std::isfinite(ei[best]));
    dagp.AddObservation(cands[best], 100.0,
                        objective(cands[best], 100.0));
    add_random(15);
    ASSERT_TRUE(dagp.Refit(&rng).ok());
    ASSERT_EQ(dagp.last_refit_kind(), core::Dagp::RefitKind::kAppend)
        << "n = " << dagp.num_observations();
    ++append_refits;
  }
  EXPECT_GE(dagp.model_observations(), 1000u);
  EXPECT_EQ(dagp.model_observations(),
            static_cast<size_t>(dagp.num_observations()));
  EXPECT_GT(append_refits, 50u);
  // The long-horizon posterior still ranks a near-optimal configuration
  // well below the prior mean region.
  Vector good(d);
  for (size_t j = 0; j < d; ++j)
    good[j] = 0.2 + 0.1 * static_cast<double>(j);
  Vector bad(d, 0.95);
  EXPECT_LT(dagp.Predict(good, 100.0).seconds,
            dagp.Predict(bad, 100.0).seconds);
}

}  // namespace
}  // namespace locat
