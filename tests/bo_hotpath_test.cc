// Tests of the BO hot-path performance layer: batched GP predictions,
// the kernel-computation cache, and end-to-end thread-count invariance
// of the tuner. The contract under test is "fast, but bit-for-bit the
// same answer" — every optimization here must be invisible in results.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "math/cholesky.h"
#include "math/matrix.h"
#include "ml/ei_mcmc.h"
#include "ml/gp.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

using math::Matrix;
using math::Vector;
using ml::GaussianProcess;
using ml::GpHyperparams;
using ml::GpKernelCache;

/// Deterministic synthetic regression set: smooth target + mild noise.
void MakeDataset(size_t n, size_t d, Matrix* x, Vector* y) {
  Rng rng(417);
  *x = Matrix(n, d);
  *y = Vector(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double v = rng.NextDouble();
      (*x)(i, j) = v;
      s += std::sin(3.0 * v + static_cast<double>(j));
    }
    (*y)[i] = s + 0.05 * rng.NextGaussian();
  }
}

GpHyperparams MakeHyperparams(size_t d) {
  GpHyperparams hp = GpHyperparams::Default(d);
  for (size_t j = 0; j < d; ++j) {
    hp.log_lengthscales[j] = -1.0 + 0.07 * static_cast<double>(j);
  }
  hp.log_signal_variance = 0.3;
  hp.log_noise_variance = -3.5;
  return hp;
}

// --------------------------------------------------- SolveLowerMatrix

TEST(SolveLowerMatrixTest, MatchesPerColumnSolveLower) {
  Rng rng(11);
  const size_t n = 24;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double v = rng.NextDouble() - 0.5;
      a(i, j) = v;
      a(j, i) = v;
    }
    a(i, i) += static_cast<double>(n);  // diagonally dominant => SPD
  }
  const auto chol = math::Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());

  const size_t m = 7;
  Matrix b(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < m; ++c) b(i, c) = rng.NextGaussian();
  }
  const Matrix y = chol->SolveLowerMatrix(b);
  ASSERT_EQ(y.rows(), n);
  ASSERT_EQ(y.cols(), m);
  for (size_t c = 0; c < m; ++c) {
    Vector col(n);
    for (size_t i = 0; i < n; ++i) col[i] = b(i, c);
    const Vector ref = chol->SolveLower(col);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y(i, c), ref[i], 1e-12) << "col " << c << " row " << i;
    }
  }
}

// -------------------------------------------------------- PredictBatch

TEST(PredictBatchTest, MatchesPerPointPredict) {
  Matrix x;
  Vector y;
  MakeDataset(60, 9, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(9)).ok());

  Rng rng(5);
  const size_t m = 200;
  Matrix xs(m, 9);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 9; ++j) xs(i, j) = rng.NextDouble();
  }
  const GaussianProcess::BatchPrediction batch = gp.PredictBatch(xs);
  ASSERT_EQ(batch.mean.size(), m);
  ASSERT_EQ(batch.variance.size(), m);
  for (size_t i = 0; i < m; ++i) {
    const auto p = gp.Predict(xs.Row(i));
    EXPECT_NEAR(batch.mean[i], p.mean, 1e-12) << "candidate " << i;
    EXPECT_NEAR(batch.variance[i], p.variance, 1e-12) << "candidate " << i;
    EXPECT_GE(batch.variance[i], 0.0);
  }
}

TEST(PredictBatchTest, AnyChunkingIsBitIdentical) {
  Matrix x;
  Vector y;
  MakeDataset(40, 6, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(6)).ok());

  Rng rng(6);
  const size_t m = 64;
  Matrix xs(m, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = rng.NextDouble();
  }
  const auto whole = gp.PredictBatch(xs);
  // Split into two uneven chunks; rows must come out bit-identical.
  const size_t cut = 19;
  Matrix lo(cut, 6);
  Matrix hi(m - cut, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      if (i < cut) {
        lo(i, j) = xs(i, j);
      } else {
        hi(i - cut, j) = xs(i, j);
      }
    }
  }
  const auto a = gp.PredictBatch(lo);
  const auto b = gp.PredictBatch(hi);
  for (size_t i = 0; i < m; ++i) {
    const double mean = i < cut ? a.mean[i] : b.mean[i - cut];
    const double var = i < cut ? a.variance[i] : b.variance[i - cut];
    EXPECT_EQ(whole.mean[i], mean) << "candidate " << i;
    EXPECT_EQ(whole.variance[i], var) << "candidate " << i;
  }
}

TEST(PredictTest, ReferenceImplementationAgrees) {
  Matrix x;
  Vector y;
  MakeDataset(50, 7, &x, &y);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, MakeHyperparams(7)).ok());
  Rng rng(7);
  for (int t = 0; t < 50; ++t) {
    Vector q(7);
    for (size_t j = 0; j < 7; ++j) q[j] = rng.NextDouble();
    const auto fast = gp.Predict(q);
    const auto ref = gp.PredictReference(q);
    EXPECT_NEAR(fast.mean, ref.mean, 1e-10);
    EXPECT_NEAR(fast.variance, ref.variance, 1e-10);
  }
}

// ------------------------------------------------------- GpKernelCache

TEST(GpKernelCacheTest, LogMarginalLikelihoodMatchesReference) {
  Matrix x;
  Vector y;
  MakeDataset(35, 8, &x, &y);
  GpKernelCache cache(x, y);
  for (int t = 0; t < 5; ++t) {
    GpHyperparams hp = MakeHyperparams(8);
    hp.log_signal_variance += 0.11 * t;
    hp.log_noise_variance -= 0.2 * t;
    const double cached = cache.LogMarginalLikelihood(hp);
    const double ref =
        GaussianProcess::ComputeLogMarginalLikelihood(x, y, hp);
    EXPECT_NEAR(cached, ref, 1e-8 * std::abs(ref)) << "variant " << t;
  }
}

TEST(GpKernelCacheTest, CacheFitMatchesDirectFit) {
  Matrix x;
  Vector y;
  MakeDataset(30, 5, &x, &y);
  const GpHyperparams hp = MakeHyperparams(5);
  GaussianProcess direct;
  ASSERT_TRUE(direct.Fit(x, y, hp).ok());
  GpKernelCache cache(x, y);
  GaussianProcess via_cache;
  ASSERT_TRUE(via_cache.Fit(cache, hp).ok());
  Rng rng(8);
  for (int t = 0; t < 20; ++t) {
    Vector q(5);
    for (size_t j = 0; j < 5; ++j) q[j] = rng.NextDouble();
    const auto a = direct.Predict(q);
    const auto b = via_cache.Predict(q);
    EXPECT_NEAR(a.mean, b.mean, 1e-10);
    EXPECT_NEAR(a.variance, b.variance, 1e-10);
  }
}

TEST(GpKernelCacheTest, AdoptFitEquivalentToFreshFit) {
  Matrix x;
  Vector y;
  MakeDataset(30, 5, &x, &y);
  const GpHyperparams hp = MakeHyperparams(5);
  GpKernelCache cache(x, y);
  // A likelihood evaluation memoizes the factorization for exactly hp...
  const double lml = cache.LogMarginalLikelihood(hp);
  ASSERT_TRUE(std::isfinite(lml));
  auto fact = cache.TakeMemoized(hp.Flatten());
  ASSERT_TRUE(fact.has_value());
  EXPECT_DOUBLE_EQ(fact->log_marginal_likelihood, lml);

  GaussianProcess adopted;
  ASSERT_TRUE(adopted.AdoptFit(cache, hp, std::move(*fact)).ok());
  GaussianProcess fresh;
  ASSERT_TRUE(fresh.Fit(cache, hp).ok());
  EXPECT_DOUBLE_EQ(adopted.LogMarginalLikelihood(),
                   fresh.LogMarginalLikelihood());
  Rng rng(9);
  for (int t = 0; t < 20; ++t) {
    Vector q(5);
    for (size_t j = 0; j < 5; ++j) q[j] = rng.NextDouble();
    const auto a = adopted.Predict(q);
    const auto b = fresh.Predict(q);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.variance, b.variance);
  }
}

TEST(GpKernelCacheTest, TakeMemoizedMissesOnDifferentHyperparams) {
  Matrix x;
  Vector y;
  MakeDataset(12, 3, &x, &y);
  GpKernelCache cache(x, y);
  const GpHyperparams hp = MakeHyperparams(3);
  cache.LogMarginalLikelihood(hp);
  GpHyperparams other = hp;
  other.log_noise_variance += 1e-9;
  EXPECT_FALSE(cache.TakeMemoized(other.Flatten()).has_value());
  // The miss must not have consumed the memo.
  EXPECT_TRUE(cache.TakeMemoized(hp.Flatten()).has_value());
  // ...but a hit does: a second take misses.
  EXPECT_FALSE(cache.TakeMemoized(hp.Flatten()).has_value());
}

TEST(GpKernelCacheTest, DegenerateKernelStillFactorsWithJitter) {
  // Duplicate points + near-zero noise force the jitter path (satellite:
  // the static likelihood and Fit must use the same regularization).
  Matrix x(6, 2);
  Vector y(6);
  for (size_t i = 0; i < 6; ++i) {
    x(i, 0) = 0.5;
    x(i, 1) = 0.5;
    y[i] = 1.0;
  }
  GpHyperparams hp = GpHyperparams::Default(2);
  hp.log_noise_variance = -40.0;
  GpKernelCache cache(x, y);
  const double cached = cache.LogMarginalLikelihood(hp);
  const double ref = GaussianProcess::ComputeLogMarginalLikelihood(x, y, hp);
  EXPECT_TRUE(std::isfinite(cached));
  EXPECT_TRUE(std::isfinite(ref));
  EXPECT_NEAR(cached, ref, 1e-6 * std::max(1.0, std::abs(ref)));
}

// ------------------------------------------------------------- EiMcmc

TEST(EiMcmcBatchTest, BatchAcquisitionMatchesPerCandidate) {
  Matrix x;
  Vector y;
  MakeDataset(25, 6, &x, &y);
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 4;
  opts.burn_in = 4;
  ml::EiMcmc model(opts);
  Rng rng(31);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());

  Rng crng(32);
  const size_t m = 80;
  Matrix xs(m, 6);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = crng.NextDouble();
  }
  const Vector eis = model.AcquisitionValueBatch(xs);
  const auto preds = model.PredictAveragedBatch(xs);
  ASSERT_EQ(eis.size(), m);
  for (size_t i = 0; i < m; ++i) {
    const Vector q = xs.Row(i);
    EXPECT_NEAR(eis[i], model.AcquisitionValue(q),
                1e-12 * std::max(1.0, std::abs(eis[i])));
    const auto p = model.PredictAveraged(q);
    EXPECT_NEAR(preds.mean[i], p.mean, 1e-10);
    EXPECT_NEAR(preds.variance[i], p.variance, 1e-10);
  }
}

TEST(EiMcmcBatchTest, FastPathInvariantToThreadCount) {
  Matrix x;
  Vector y;
  MakeDataset(25, 6, &x, &y);
  Matrix xs(50, 6);
  Rng crng(33);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 6; ++j) xs(i, j) = crng.NextDouble();
  }
  auto run = [&](int threads) {
    common::ThreadPool::SetGlobalThreads(threads);
    ml::EiMcmc::Options opts;
    opts.num_hyper_samples = 4;
    opts.burn_in = 4;
    ml::EiMcmc model(opts);
    Rng rng(34);
    EXPECT_TRUE(model.Fit(x, y, &rng).ok());
    return model.AcquisitionValueBatch(xs);
  };
  const Vector one = run(1);
  const Vector four = run(4);
  const Vector eight = run(8);
  common::ThreadPool::SetGlobalThreads(0);  // restore default
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << "candidate " << i;
    EXPECT_EQ(one[i], eight[i]) << "candidate " << i;
  }
}

TEST(EiMcmcBatchTest, LegacyPathStillWorks) {
  Matrix x;
  Vector y;
  MakeDataset(20, 4, &x, &y);
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 3;
  opts.burn_in = 3;
  opts.fast_path = false;
  ml::EiMcmc legacy(opts);
  Rng rng(35);
  ASSERT_TRUE(legacy.Fit(x, y, &rng).ok());
  EXPECT_TRUE(legacy.fitted());
  EXPECT_GT(static_cast<int>(legacy.ensemble().size()), 0);
  Vector q(4, 0.4);
  EXPECT_GE(legacy.AcquisitionValue(q), 0.0);
}

// ------------------------------------------- end-to-end tuner invariance

TEST(BoHotPathTest, TunerOutputBitIdenticalAcrossThreadCounts) {
  const auto cluster = sparksim::X86Cluster();
  const auto app = workloads::HiBenchAggregation();
  auto run = [&](int threads) {
    common::ThreadPool::SetGlobalThreads(threads);
    sparksim::ClusterSimulator sim(cluster, 90);
    core::TuningSession session(&sim, app);
    core::LocatTuner::Options opts;
    opts.n_qcsa = 8;
    opts.n_iicp = 6;
    opts.lhs_init = 2;
    opts.min_iterations = 3;
    opts.max_iterations = 6;
    opts.warm_iterations = 3;
    opts.candidates = 60;
    opts.seed = 9;
    core::LocatTuner tuner(opts);
    return tuner.Tune(&session, 200.0);
  };
  const core::TuningResult one = run(1);
  const core::TuningResult four = run(4);
  const core::TuningResult eight = run(8);
  common::ThreadPool::SetGlobalThreads(0);  // restore default

  EXPECT_EQ(one.evaluations, four.evaluations);
  EXPECT_EQ(one.evaluations, eight.evaluations);
  EXPECT_EQ(one.best_observed_seconds, four.best_observed_seconds);
  EXPECT_EQ(one.best_observed_seconds, eight.best_observed_seconds);
  EXPECT_EQ(one.optimization_seconds, four.optimization_seconds);
  EXPECT_EQ(one.optimization_seconds, eight.optimization_seconds);
  EXPECT_TRUE(one.best_conf == four.best_conf);
  EXPECT_TRUE(one.best_conf == eight.best_conf);
}

}  // namespace
}  // namespace locat
