// Determinism sweeps: every tuner must produce bit-identical results for
// identical seeds — the property that makes every figure in this repo
// exactly reproducible.
#include <gtest/gtest.h>

#include "core/tuning.h"
#include "harness/experiments.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

class TunerDeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TunerDeterminismTest, IdenticalSeedsIdenticalResults) {
  const std::string name = GetParam();
  auto run_once = [&]() {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 777);
    core::TuningSession session(&sim, workloads::HiBenchAggregation());
    auto tuner = harness::MakeTuner(name, /*seed_salt=*/0);
    return tuner->Tune(&session, 150.0);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.evaluations, b.evaluations) << name;
  EXPECT_DOUBLE_EQ(a.optimization_seconds, b.optimization_seconds) << name;
  EXPECT_DOUBLE_EQ(a.best_observed_seconds, b.best_observed_seconds) << name;
  EXPECT_TRUE(a.best_conf == b.best_conf) << name;
}

// "Random" exercises the base Tuner plumbing; the composites exercise the
// frontend path end to end.
INSTANTIATE_TEST_SUITE_P(AllTuners, TunerDeterminismTest,
                         ::testing::Values("Random", "Tuneful", "DAC",
                                           "GBO-RL", "QTune", "LOCAT",
                                           "DAC+QIT"));

class SimulatorClusterDsTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(SimulatorClusterDsTest, AppRunInvariantsHold) {
  const auto [cluster_name, ds] = GetParam();
  const auto cluster = harness::MakeCluster(cluster_name);
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(cluster, 55, params);
  sparksim::ConfigSpace space(cluster);
  Rng rng(56);
  const auto app = workloads::TpcH();
  const auto run = sim.RunApp(app, space.RandomValid(&rng), ds);

  ASSERT_EQ(run.per_query.size(), 22u);
  double query_sum = 0.0;
  double gc_sum = 0.0;
  for (const auto& q : run.per_query) {
    EXPECT_GT(q.exec_seconds, 0.0) << q.name;
    EXPECT_GE(q.gc_seconds, 0.0) << q.name;
    EXPECT_LE(q.gc_seconds, q.exec_seconds) << q.name;
    query_sum += q.exec_seconds;
    gc_sum += q.gc_seconds;
  }
  // Total = queries + submit overhead (bounded).
  EXPECT_GE(run.total_seconds, query_sum);
  EXPECT_LE(run.total_seconds, query_sum + 120.0);
  EXPECT_NEAR(run.gc_seconds, gc_sum, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorClusterDsTest,
    ::testing::Combine(::testing::Values("arm", "x86"),
                       ::testing::Values(100.0, 300.0, 500.0, 1000.0)));

}  // namespace
}  // namespace locat
