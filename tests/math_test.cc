#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/cholesky.h"
#include "math/distributions.h"
#include "math/eigen.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace locat::math {
namespace {

TEST(VectorTest, BasicOps) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_NEAR(a.Norm(), std::sqrt(14.0), 1e-12);
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  Vector d = b - a;
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  Vector e = 2.0 * a;
  EXPECT_DOUBLE_EQ(e[1], 4.0);
}

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix m{{1, 2}, {3, 4}};
  Matrix i = Matrix::Identity(2);
  Matrix p = m * i;
  EXPECT_EQ(p.MaxAbsDiff(m), 0.0);
  Vector v{1.0, 1.0};
  Vector mv = m * v;
  EXPECT_DOUBLE_EQ(mv[0], 3.0);
  EXPECT_DOUBLE_EQ(mv[1], 7.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(MatrixTest, RowColSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1, 2, 3});
  m.SetRow(1, Vector{4, 5, 6});
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 6.0);
  EXPECT_DOUBLE_EQ(m.Col(1)[0], 2.0);
}

TEST(MatrixTest, AddToDiagonal) {
  Matrix m = Matrix::Identity(3);
  m.AddToDiagonal(0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(MatrixTest, AssociativityProperty) {
  Rng rng(3);
  Matrix a(4, 5), b(5, 3), c(3, 2);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 5; ++j) a(i, j) = rng.NextGaussian();
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 3; ++j) b(i, j) = rng.NextGaussian();
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 2; ++j) c(i, j) = rng.NextGaussian();
  EXPECT_LT(((a * b) * c).MaxAbsDiff(a * (b * c)), 1e-10);
}

class CholeskySeedTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySeedTest, FactorReconstructsAndSolves) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 6;
  // Random SPD matrix: A = B B^T + n I.
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) b(i, j) = rng.NextGaussian();
  Matrix a = b * b.Transpose();
  a.AddToDiagonal(static_cast<double>(n));

  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const Matrix l = chol->L();
  EXPECT_LT((l * l.Transpose()).MaxAbsDiff(a), 1e-9);

  Vector rhs(n);
  for (size_t i = 0; i < n; ++i) rhs[i] = rng.NextGaussian();
  Vector x = chol->Solve(rhs);
  Vector ax = a * x;
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskySeedTest, ::testing::Range(0, 8));

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Factor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, JitterRecoversNearSingular) {
  // Rank-deficient Gram matrix.
  Matrix a{{1, 1}, {1, 1}};
  auto chol = Cholesky::FactorWithJitter(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->jitter(), 0.0);
}

TEST(CholeskyTest, LogDeterminant) {
  Matrix a{{4, 0}, {0, 9}};
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDeterminant(), std::log(36.0), 1e-12);
}

TEST(CholeskyTest, MatrixSolve) {
  Matrix a{{4, 1}, {1, 3}};
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix x = chol->Solve(Matrix::Identity(2));
  EXPECT_LT((a * x).MaxAbsDiff(Matrix::Identity(2)), 1e-10);
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 1}};
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownSymmetricMatrix) {
  Matrix a{{2, 1}, {1, 2}};  // eigenvalues 3 and 1
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-9);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
}

class EigenSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenSeedTest, ReconstructionAndOrthonormality) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const size_t n = 7;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.NextGaussian();
      a(j, i) = a(i, j);
    }
  }
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& v = eig->eigenvectors;
  // V^T V = I.
  EXPECT_LT((v.Transpose() * v).MaxAbsDiff(Matrix::Identity(n)), 1e-8);
  // V diag(lambda) V^T = A.
  Matrix lam(n, n);
  for (size_t i = 0; i < n; ++i) lam(i, i) = eig->eigenvalues[i];
  EXPECT_LT((v * lam * v.Transpose()).MaxAbsDiff(a), 1e-8);
  // Descending order.
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_GE(eig->eigenvalues[i], eig->eigenvalues[i + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenSeedTest, ::testing::Range(0, 8));

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(xs), 0.4);
}

TEST(StatsTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
}

TEST(StatsTest, CvZeroMean) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({-1.0, 1.0}), 0.0);
}

TEST(StatsTest, Mse) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {1, 4}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredRelativeError({2, 2}, {2, 4}), 0.125);
}

TEST(StatsTest, MinMaxQuantile) {
  std::vector<double> xs = {3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Min(xs), 1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
}

TEST(StatsTest, RankWithTies) {
  std::vector<double> ranks = RankWithTies({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, RankAllEqual) {
  std::vector<double> ranks = RankWithTies({5, 5, 5});
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 2.0);
}

TEST(DistributionsTest, NormalCdfSymmetry) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-3.0) + NormalCdf(3.0), 1.0, 1e-12);
}

TEST(DistributionsTest, NormalPdfPeak) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(1.0));
}

TEST(DistributionsTest, ExpectedImprovementProperties) {
  // Zero stddev degenerates to max(best - mean, 0).
  EXPECT_DOUBLE_EQ(ExpectedImprovement(5.0, 0.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(3.0, 0.0, 4.0), 1.0);
  // EI is positive with uncertainty even when the mean is worse.
  EXPECT_GT(ExpectedImprovement(5.0, 1.0, 4.0), 0.0);
  // EI increases with uncertainty.
  EXPECT_LT(ExpectedImprovement(5.0, 0.5, 4.0),
            ExpectedImprovement(5.0, 2.0, 4.0));
  // EI increases as the predicted mean improves.
  EXPECT_LT(ExpectedImprovement(5.0, 1.0, 4.0),
            ExpectedImprovement(3.0, 1.0, 4.0));
}

}  // namespace
}  // namespace locat::math
