// Observability subsystem: tracer nesting + Chrome export, metrics
// round-trips, telemetry JSONL round-trips, the simulated-time lane of
// the cluster simulator, and the null-observer determinism guarantee
// (tracing a tune pass must not change its result).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/tuning.h"
#include "harness/experiments.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TracerTest, SpansNestAndExportAsChromeTrace) {
  obs::ManualClock clock(/*start_ns=*/0, /*tick_ns=*/1000);
  obs::Tracer tracer(&clock);
  {
    obs::ScopedSpan outer(&tracer, "outer", "test");
    outer.Arg("n", 3.0);
    {
      obs::ScopedSpan inner(&tracer, "inner", "test");
      inner.Arg("label", std::string("a\"b"));
    }
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first; its recorded depth is one below the outer span.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, events[1].depth + 1);
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(Contains(json, "\"traceEvents\":["));
  EXPECT_TRUE(Contains(json, "\"name\":\"outer\""));
  EXPECT_TRUE(Contains(json, "\"ph\":\"X\""));
  EXPECT_TRUE(Contains(json, "\"n\":3"));
  EXPECT_TRUE(Contains(json, "a\\\"b"));  // Arg strings are JSON-escaped
}

TEST(TracerTest, NullTracerIsANoOp) {
  obs::ScopedSpan span(nullptr, "never");
  span.Arg("k", 1.0);
  span.Arg("s", std::string("x"));
  // Destruction must not crash; nothing to assert beyond reaching here.
}

TEST(TracerTest, ManualClockMakesExportDeterministic) {
  auto render = [] {
    obs::ManualClock clock;
    obs::Tracer tracer(&clock);
    {
      obs::ScopedSpan a(&tracer, "a");
      obs::ScopedSpan b(&tracer, "b");
    }
    tracer.RecordComplete("sim", "sim", 10, 20, obs::kSimulatedPid, 0,
                          "\"x\":1");
    std::ostringstream os;
    tracer.WriteChromeTrace(os);
    return os.str();
  };
  EXPECT_EQ(render(), render());
}

TEST(MetricsTest, PrometheusAndJsonRoundTrip) {
  obs::MetricsRegistry registry;
  obs::Counter* evals = registry.GetCounter("locat_evals_total", "runs");
  evals->Increment();
  evals->Increment(2.0);
  registry.GetGauge("locat_best_seconds", "incumbent")->Set(123.5);
  obs::Histogram* hist =
      registry.GetHistogram("locat_eval_seconds", "per-eval", {10.0, 100.0});
  hist->Observe(5.0);
  hist->Observe(50.0);
  hist->Observe(500.0);

  // Re-registration returns the same instance.
  EXPECT_EQ(registry.GetCounter("locat_evals_total"), evals);
  EXPECT_EQ(registry.metric_count(), 3u);
  EXPECT_DOUBLE_EQ(evals->value(), 3.0);
  EXPECT_EQ(hist->count(), 3u);
  EXPECT_DOUBLE_EQ(hist->sum(), 555.0);

  std::ostringstream prom;
  registry.WritePrometheus(prom);
  const std::string text = prom.str();
  EXPECT_TRUE(Contains(text, "# HELP locat_evals_total runs"));
  EXPECT_TRUE(Contains(text, "# TYPE locat_evals_total counter"));
  EXPECT_TRUE(Contains(text, "locat_evals_total 3"));
  EXPECT_TRUE(Contains(text, "locat_best_seconds 123.5"));
  // Cumulative buckets: le=10 -> 1, le=100 -> 2, +Inf -> 3.
  EXPECT_TRUE(Contains(text, "locat_eval_seconds_bucket{le=\"10\"} 1"));
  EXPECT_TRUE(Contains(text, "locat_eval_seconds_bucket{le=\"100\"} 2"));
  EXPECT_TRUE(Contains(text, "locat_eval_seconds_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(Contains(text, "locat_eval_seconds_count 3"));

  std::ostringstream js;
  registry.WriteJson(js);
  const std::string json = js.str();
  EXPECT_TRUE(Contains(json, "\"counters\""));
  EXPECT_TRUE(Contains(json, "\"locat_evals_total\":3"));
  EXPECT_TRUE(Contains(json, "\"locat_best_seconds\":123.5"));
}

TEST(TelemetryTest, JsonlRoundTrip) {
  std::ostringstream os;
  obs::JsonlObserver observer(&os);

  obs::BoIterationEvent it;
  it.tuner = "LOCAT";
  it.phase = "reduced";
  it.iteration = 7;
  it.datasize_gb = 300.0;
  it.eval_seconds = 1234.5;
  it.objective_seconds = 1100.25;
  it.incumbent_seconds = 900.0;
  it.relative_ei = 0.02;
  it.candidate_pool = 512;
  it.full_app = false;
  it.dagp_fit_seconds = 0.75;
  it.mcmc_ensemble = 10;
  it.mcmc_density_evals = 4200;
  it.mcmc_acceptance = 0.85;
  it.rqa_share = 0.31;
  it.rqa_queries = 33;
  observer.OnIteration(it);

  obs::PhaseEvent ph;
  ph.tuner = "LOCAT";
  ph.phase = "qcsa";
  ph.fields = {{"csq", 33.0}, {"ciq", 71.0}};
  observer.OnPhase(ph);

  const auto parsed = obs::ParseTelemetry(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& records = parsed.value();
  ASSERT_EQ(records.size(), 2u);

  const auto& r0 = records[0];
  EXPECT_EQ(r0.type, "iteration");
  EXPECT_EQ(r0.Str("tuner"), "LOCAT");
  EXPECT_EQ(r0.Str("phase"), "reduced");
  EXPECT_DOUBLE_EQ(r0.Num("iter"), 7.0);
  EXPECT_DOUBLE_EQ(r0.Num("eval_seconds"), 1234.5);
  EXPECT_DOUBLE_EQ(r0.Num("objective_seconds"), 1100.25);
  EXPECT_DOUBLE_EQ(r0.Num("incumbent_seconds"), 900.0);
  EXPECT_DOUBLE_EQ(r0.Num("relative_ei"), 0.02);
  EXPECT_DOUBLE_EQ(r0.Num("candidate_pool"), 512.0);
  EXPECT_DOUBLE_EQ(r0.Num("full_app"), 0.0);  // bools parse as 0/1
  EXPECT_DOUBLE_EQ(r0.Num("mcmc_density_evals"), 4200.0);
  EXPECT_DOUBLE_EQ(r0.Num("rqa_share"), 0.31);

  const auto& r1 = records[1];
  EXPECT_EQ(r1.type, "phase");
  EXPECT_EQ(r1.Str("phase"), "qcsa");
  EXPECT_DOUBLE_EQ(r1.Num("csq"), 33.0);
  EXPECT_DOUBLE_EQ(r1.Num("ciq"), 71.0);
}

TEST(TelemetryTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(obs::ParseTelemetry("not json\n").ok());
  EXPECT_FALSE(obs::ParseTelemetry("{\"a\":}\n").ok());
  EXPECT_FALSE(obs::ParseTelemetry("{\"a\":1}\n").ok());  // missing type
  // Empty lines are fine.
  const auto ok = obs::ParseTelemetry("\n{\"type\":\"phase\"}\n\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 1u);
}

TEST(SimulatorTraceTest, EmitsSimulatedLaneWithoutChangingResults) {
  const auto app = workloads::HiBenchAggregation();
  sparksim::ConfigSpace space(sparksim::X86Cluster());
  const auto conf = space.Repair(space.DefaultConf());

  sparksim::ClusterSimulator plain(sparksim::X86Cluster(), 99);
  const auto untraced = plain.RunApp(app, conf, 200.0);

  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  sparksim::ClusterSimulator traced_sim(sparksim::X86Cluster(), 99);
  traced_sim.set_tracer(&tracer);
  const auto traced = traced_sim.RunApp(app, conf, 200.0);

  // Tracing is purely observational: identical seeds, identical results.
  EXPECT_DOUBLE_EQ(traced.total_seconds, untraced.total_seconds);
  EXPECT_DOUBLE_EQ(traced.gc_seconds, untraced.gc_seconds);

  int sim_lane = 0;
  int wall_lane = 0;
  uint64_t app_end = 0;
  for (const auto& ev : tracer.snapshot()) {
    if (ev.pid == obs::kSimulatedPid) {
      ++sim_lane;
      app_end = std::max(app_end, ev.start_ns + ev.dur_ns);
    } else {
      ++wall_lane;
    }
  }
  // submit + per-query (query, scan, maybe shuffle/gc) + app envelope.
  EXPECT_GE(sim_lane, 2 + 2 * app.num_queries());
  EXPECT_GE(wall_lane, 1);  // the wall-clock "sim/app" span

  // A second run appends after the first: the lane is one monotonic
  // schedule, not overlapping restarts.
  traced_sim.RunApp(app, conf, 200.0);
  uint64_t second_app_start = ~uint64_t{0};
  int count = 0;
  for (const auto& ev : tracer.snapshot()) {
    if (ev.pid == obs::kSimulatedPid && ++count > sim_lane) {
      second_app_start = std::min(second_app_start, ev.start_ns);
    }
  }
  EXPECT_GE(second_app_start, app_end);
}

// Wiring a full observability context must not change what any tuner
// computes: telemetry reads state, it never draws from the RNGs.
TEST(ObservedTuneTest, ObserverDoesNotChangeTunerOutput) {
  auto run = [](bool observed, obs::CollectingObserver* collector,
                obs::MetricsRegistry* metrics) {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 777);
    core::TuningSession session(&sim, workloads::HiBenchAggregation());
    auto tuner = harness::MakeTuner("LOCAT", /*seed_salt=*/0);
    obs::Tracer tracer;
    if (observed) {
      sim.set_tracer(&tracer);
      obs::ObsContext ctx;
      ctx.tracer = &tracer;
      ctx.metrics = metrics;
      ctx.observer = collector;
      session.SetObservability(ctx);
      tuner->SetObservability(ctx);
    }
    return tuner->Tune(&session, 150.0);
  };

  obs::CollectingObserver collector;
  obs::MetricsRegistry metrics;
  const auto plain = run(false, nullptr, nullptr);
  const auto observed = run(true, &collector, &metrics);

  EXPECT_EQ(observed.evaluations, plain.evaluations);
  EXPECT_DOUBLE_EQ(observed.optimization_seconds, plain.optimization_seconds);
  EXPECT_DOUBLE_EQ(observed.best_observed_seconds,
                   plain.best_observed_seconds);
  EXPECT_TRUE(observed.best_conf == plain.best_conf);

  // Coverage invariant: one iteration event per charged evaluation, and
  // the per-event charges sum to the meter exactly.
  EXPECT_EQ(static_cast<int>(collector.iterations.size()),
            plain.evaluations);
  double charged = 0.0;
  for (const auto& ev : collector.iterations) charged += ev.eval_seconds;
  EXPECT_NEAR(charged, plain.optimization_seconds,
              1e-9 * plain.optimization_seconds);

  // The meter counter agrees with the tuner's own accounting.
  EXPECT_DOUBLE_EQ(
      metrics.GetCounter("locat_evaluations_total")->value(),
      static_cast<double>(plain.evaluations));
  EXPECT_NEAR(metrics.GetCounter("locat_optimization_seconds_total")->value(),
              plain.optimization_seconds,
              1e-9 * plain.optimization_seconds);

  // LOCAT emits its analysis phases and a final summary.
  bool saw_qcsa = false;
  bool saw_summary = false;
  for (const auto& ph : collector.phases) {
    if (ph.phase == "qcsa") saw_qcsa = true;
    if (ph.phase == "summary") saw_summary = true;
  }
  EXPECT_TRUE(saw_qcsa);
  EXPECT_TRUE(saw_summary);
}

}  // namespace
}  // namespace locat
