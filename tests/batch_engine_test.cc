// Batch/sequential engine equivalence: the SoA BatchEngine promises
// bit-identical results, RNG streams, run counters and cache values for
// any thread count, cache state, SIMD backend and fault plan
// (batch_engine.h). These tests sweep that whole matrix on a seeded
// random grid and byte-compare every field, then check the dispatch
// plumbing (auto threshold, name parsing) and an end-to-end tune.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "math/kern/kern.h"
#include "sparksim/batch_engine.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/eval_cache.h"
#include "sparksim/faults.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::sparksim {
namespace {

// Every test in this file pokes process-global dispatch state; restore
// the defaults so test order cannot matter.
class BatchEngineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetSimEngine(SimEngine::kAuto);
    math::kern::SetBackend(math::kern::BestBackend());
    common::ThreadPool::SetGlobalThreads(0);  // restore default
  }
};

std::vector<int> AllQueries(const SparkSqlApp& app) {
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return all;
}

std::vector<SparkConf> RandomConfs(const ConfigSpace& space, int n,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<SparkConf> confs;
  confs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) confs.push_back(space.RandomValid(&rng));
  return confs;
}

// EXPECT_EQ on doubles is the point: the contract is bitwise, not
// approximate.
void ExpectSameMetrics(const QueryMetrics& a, const QueryMetrics& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.exec_seconds, b.exec_seconds);
  EXPECT_EQ(a.gc_seconds, b.gc_seconds);
  EXPECT_EQ(a.scan_seconds, b.scan_seconds);
  EXPECT_EQ(a.shuffle_seconds, b.shuffle_seconds);
  EXPECT_EQ(a.shuffle_gb, b.shuffle_gb);
  EXPECT_EQ(a.spill_gb, b.spill_gb);
  EXPECT_EQ(a.scan_tasks, b.scan_tasks);
  EXPECT_EQ(a.task_waves, b.task_waves);
  EXPECT_EQ(a.oom, b.oom);
  EXPECT_EQ(a.oom_severity, b.oom_severity);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
}

void ExpectSameResult(const AppRunResult& a, const AppRunResult& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.gc_seconds, b.gc_seconds);
  EXPECT_EQ(a.shuffle_gb, b.shuffle_gb);
  EXPECT_EQ(a.any_oom, b.any_oom);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.failed_at_query, b.failed_at_query);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_executors, b.lost_executors);
  EXPECT_EQ(a.fail_reason, b.fail_reason);
  ASSERT_EQ(a.per_query.size(), b.per_query.size());
  for (size_t q = 0; q < a.per_query.size(); ++q) {
    SCOPED_TRACE("q" + std::to_string(q));
    ExpectSameMetrics(a.per_query[q], b.per_query[q]);
  }
}

struct SweepOutput {
  std::vector<AppRunResult> results;
  int64_t runs_performed = 0;
  FaultStats fault_stats;
  SimEngineStats engine_stats;
};

// One grid sweep under `engine` on a fresh simulator (fixed seed, so both
// engines see the same RNG state and default-sigma noise stream).
void RunSweep(SimEngine engine, const SparkSqlApp& app,
              const std::vector<int>& queries,
              const std::vector<SparkConf>& confs, bool with_faults,
              EvalCache* cache, SweepOutput* out) {
  SetSimEngine(engine);
  ClusterSimulator sim(X86Cluster(), /*seed=*/5);
  if (with_faults) sim.set_faults(FaultSpec::Heavy(/*seed=*/9));
  if (cache != nullptr) sim.set_eval_cache(cache);
  auto results = sim.RunAppBatch(app, queries, confs, /*datasize_gb=*/200.0);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  out->results = std::move(results).value();
  out->runs_performed = sim.runs_performed();
  out->fault_stats = sim.fault_stats();
  out->engine_stats = sim.engine_stats();
}

void ExpectSameSweep(const SweepOutput& a, const SweepOutput& b) {
  EXPECT_EQ(a.runs_performed, b.runs_performed);
  EXPECT_EQ(a.fault_stats.executor_losses, b.fault_stats.executor_losses);
  EXPECT_EQ(a.fault_stats.stragglers, b.fault_stats.stragglers);
  EXPECT_EQ(a.fault_stats.fetch_failures, b.fault_stats.fetch_failures);
  EXPECT_EQ(a.fault_stats.app_kills, b.fault_stats.app_kills);
  EXPECT_EQ(a.fault_stats.failed_runs, b.fault_stats.failed_runs);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("conf " + std::to_string(i));
    ExpectSameResult(a.results[i], b.results[i]);
  }
}

// The headline property: sweep threads x cache x faults x simd (the
// --threads / --sim-cache on|off / --faults off|heavy / --simd off|native
// axes) and require the batch engine's output byte-equal to the
// sequential reference in every cell, along with the run counter and the
// fault counters. For the cached combos a warm re-read through the
// *other* engine's cache must also match: the two engines may attribute
// hit/miss counters differently for duplicate lanes, but the cached
// values themselves are part of the contract.
TEST_F(BatchEngineTest, MatrixBitIdenticalToSequential) {
  const auto app = workloads::TpcH();
  const std::vector<int> queries = AllQueries(app);
  ConfigSpace space(X86Cluster());
  const auto confs = RandomConfs(space, 48, /*seed=*/42);

  for (int threads : {1, 4, 8}) {
    common::ThreadPool::SetGlobalThreads(threads);
    for (bool with_cache : {false, true}) {
      for (bool with_faults : {false, true}) {
        for (const char* simd : {"off", "native"}) {
          ASSERT_TRUE(math::kern::SetBackendByName(simd).ok());
          SCOPED_TRACE(std::string("threads=") + std::to_string(threads) +
                       " cache=" + (with_cache ? "on" : "off") +
                       " faults=" + (with_faults ? "heavy" : "off") +
                       " simd=" + simd);
          EvalCache seq_cache, batch_cache;
          SweepOutput seq, batch;
          RunSweep(SimEngine::kSeq, app, queries, confs, with_faults,
                   with_cache ? &seq_cache : nullptr, &seq);
          RunSweep(SimEngine::kBatch, app, queries, confs, with_faults,
                   with_cache ? &batch_cache : nullptr, &batch);
          ExpectSameSweep(seq, batch);
          if (with_cache) {
            EXPECT_EQ(seq_cache.size(), batch_cache.size());
            // Warm passes swap the caches between engines; any divergence
            // in a cached value would surface here as a result diff.
            SweepOutput warm_seq, warm_batch;
            RunSweep(SimEngine::kSeq, app, queries, confs, with_faults,
                     &batch_cache, &warm_seq);
            RunSweep(SimEngine::kBatch, app, queries, confs, with_faults,
                     &seq_cache, &warm_batch);
            ExpectSameSweep(seq, warm_seq);
            ExpectSameSweep(seq, warm_batch);
          }
        }
      }
    }
  }
}

// Duplicate configurations inside one batch share lowered lanes and (with
// a cache) race for the same fingerprint; the results must still match
// the sequential loop bit for bit.
TEST_F(BatchEngineTest, DuplicateConfsBitIdentical) {
  const auto app = workloads::TpcH();
  const std::vector<int> queries = AllQueries(app);
  ConfigSpace space(X86Cluster());
  const auto unique = RandomConfs(space, 7, /*seed=*/77);
  std::vector<SparkConf> confs;
  for (int rep = 0; rep < 3; ++rep) {
    confs.insert(confs.end(), unique.begin(), unique.end());
  }
  EvalCache seq_cache, batch_cache;
  SweepOutput seq, batch;
  RunSweep(SimEngine::kSeq, app, queries, confs, /*with_faults=*/false,
           &seq_cache, &seq);
  RunSweep(SimEngine::kBatch, app, queries, confs, /*with_faults=*/false,
           &batch_cache, &batch);
  ExpectSameSweep(seq, batch);
  EXPECT_EQ(seq_cache.size(), batch_cache.size());
}

// kAuto routes batches below kBatchEngineMinConfs to the sequential
// engine (nothing to amortize the lowering over) and everything else to
// the SoA engine; engine_stats() records the dispatch.
TEST_F(BatchEngineTest, AutoDispatchThreshold) {
  const auto app = workloads::TpcH();
  const std::vector<int> queries = AllQueries(app);
  ConfigSpace space(X86Cluster());
  const auto confs = RandomConfs(space, 4, /*seed=*/3);

  SweepOutput single;
  RunSweep(SimEngine::kAuto, app, queries, {confs[0]}, false, nullptr,
           &single);
  EXPECT_EQ(single.engine_stats.seq_batches, 1u);
  EXPECT_EQ(single.engine_stats.batch_batches, 0u);

  SweepOutput batched;
  RunSweep(SimEngine::kAuto, app, queries, confs, false, nullptr, &batched);
  EXPECT_EQ(batched.engine_stats.batch_batches, 1u);
  EXPECT_EQ(batched.engine_stats.batch_lanes, confs.size());
  EXPECT_EQ(batched.engine_stats.batch_cells, confs.size() * queries.size());
  EXPECT_EQ(batched.engine_stats.seq_batches, 0u);
}

TEST_F(BatchEngineTest, SetSimEngineByNameParses) {
  ASSERT_TRUE(SetSimEngineByName("seq").ok());
  EXPECT_STREQ(ActiveSimEngineName(), "seq");
  ASSERT_TRUE(SetSimEngineByName("batch").ok());
  EXPECT_STREQ(ActiveSimEngineName(), "batch");
  ASSERT_TRUE(SetSimEngineByName("auto").ok());
  EXPECT_STREQ(ActiveSimEngineName(), "auto");
  // Invalid names are rejected and leave the dispatch untouched.
  EXPECT_FALSE(SetSimEngineByName("vector").ok());
  EXPECT_STREQ(ActiveSimEngineName(), "auto");
}

// The FaultSpec::FromName plumbing the CLI / RunSweep-style callers use.
TEST_F(BatchEngineTest, FaultSpecFromNameHeavy) {
  auto spec = FaultSpec::FromName("heavy", 9);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(FingerprintFaultSpec(spec.value()),
            FingerprintFaultSpec(FaultSpec::Heavy(9)));
}

// End-to-end: a full LOCAT tune driven through each engine lands on the
// same configuration with the same meter readings and trajectory — the
// in-process version of the CI byte-diff smoke.
TEST_F(BatchEngineTest, EndToEndTuneBitIdentical) {
  const auto app = workloads::TpcH();
  core::LocatTuner::Options opts;
  opts.n_qcsa = 12;
  opts.n_iicp = 10;
  opts.lhs_init = 3;
  opts.min_iterations = 5;
  opts.max_iterations = 8;
  opts.candidates = 120;
  opts.seed = 11;

  core::TuningResult results[2];
  const SimEngine engines[2] = {SimEngine::kSeq, SimEngine::kBatch};
  for (int e = 0; e < 2; ++e) {
    SetSimEngine(engines[e]);
    ClusterSimulator sim(X86Cluster(), /*seed=*/500);
    core::TuningSession session(&sim, app);
    core::LocatTuner tuner(opts);
    results[e] = tuner.Tune(&session, /*datasize_gb=*/100.0);
  }
  EXPECT_TRUE(results[0].best_conf == results[1].best_conf);
  EXPECT_EQ(results[0].best_observed_seconds,
            results[1].best_observed_seconds);
  EXPECT_EQ(results[0].optimization_seconds,
            results[1].optimization_seconds);
  EXPECT_EQ(results[0].evaluations, results[1].evaluations);
  EXPECT_EQ(results[0].trajectory, results[1].trajectory);
}

}  // namespace
}  // namespace locat::sparksim
