#include <gtest/gtest.h>

#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "tuners/baselines.h"
#include "tuners/bo_search.h"
#include "tuners/frontend.h"
#include "workloads/workloads.h"

namespace locat::tuners {
namespace {

core::TuningSession MakeSession(sparksim::ClusterSimulator* sim,
                                const std::string& app_name) {
  if (app_name == "TPC-H") {
    return core::TuningSession(sim, workloads::TpcH());
  }
  if (app_name == "Aggregation") {
    return core::TuningSession(sim, workloads::HiBenchAggregation());
  }
  return core::TuningSession(sim, workloads::HiBenchJoin());
}

double DefaultSeconds(core::TuningSession* session, double ds) {
  return session
      ->MeasureFinal(session->space().Repair(session->space().DefaultConf()),
                     ds)
      .total_seconds;
}

TEST(RandomSearchTest, ImprovesOverDefault) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1);
  auto session = MakeSession(&sim, "Join");
  RandomSearchTuner::Options opts;
  opts.evaluations = 20;
  RandomSearchTuner tuner(opts);
  const auto result = tuner.Tune(&session, 200.0);
  EXPECT_EQ(result.evaluations, 20);
  EXPECT_LT(result.best_observed_seconds, DefaultSeconds(&session, 200.0));
  EXPECT_EQ(result.trajectory.size(), 20u);
  // Best-so-far trajectory is non-increasing.
  for (size_t i = 1; i < result.trajectory.size(); ++i) {
    EXPECT_LE(result.trajectory[i], result.trajectory[i - 1]);
  }
}

TEST(RandomSearchTest, FreeParamRestrictionPinsOthers) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 2);
  auto session = MakeSession(&sim, "Join");
  RandomSearchTuner::Options opts;
  opts.evaluations = 6;
  RandomSearchTuner tuner(opts);
  tuner.SetFreeParams({sparksim::kExecutorMemory});
  const auto result = tuner.Tune(&session, 100.0);
  const sparksim::SparkConf base =
      session.space().Repair(session.space().DefaultConf());
  // Everything except memory (and repair-coupled resource params) stays at
  // the default.
  EXPECT_EQ(result.best_conf.GetInt(sparksim::kSqlShufflePartitions),
            base.GetInt(sparksim::kSqlShufflePartitions));
  EXPECT_EQ(result.best_conf.GetInt(sparksim::kLocalityWait),
            base.GetInt(sparksim::kLocalityWait));
}

class BaselineSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineSmokeTest, RunsAndBeatsDefaultOnTinyBudget) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 3);
  auto session = MakeSession(&sim, "Aggregation");
  std::unique_ptr<core::Tuner> tuner;
  const std::string name = GetParam();
  if (name == "Tuneful") {
    TunefulTuner::Options o;
    o.bo_iterations = 8;
    o.significant_params = 5;
    tuner = std::make_unique<TunefulTuner>(o);
  } else if (name == "DAC") {
    DacTuner::Options o;
    o.training_samples = 15;
    o.ga_generations = 5;
    o.ga_population = 20;
    o.validation_runs = 3;
    tuner = std::make_unique<DacTuner>(o);
  } else if (name == "GBO-RL") {
    GboRlTuner::Options o;
    o.bo_iterations = 8;
    o.guided_seeds = 3;
    tuner = std::make_unique<GboRlTuner>(o);
  } else {
    QtuneTuner::Options o;
    o.episodes = 3;
    o.steps_per_episode = 6;
    tuner = std::make_unique<QtuneTuner>(o);
  }
  EXPECT_EQ(tuner->name(), name);
  const auto result = tuner->Tune(&session, 150.0);
  EXPECT_GT(result.evaluations, 5);
  EXPECT_GT(result.optimization_seconds, 0.0);
  EXPECT_LT(result.best_observed_seconds, DefaultSeconds(&session, 150.0));
  EXPECT_TRUE(session.space().Validate(result.best_conf).ok());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineSmokeTest,
                         ::testing::Values("Tuneful", "DAC", "GBO-RL",
                                           "QTune"));

TEST(CherryPickTest, PlainBoImprovesOverDefault) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 12);
  auto session = MakeSession(&sim, "Join");
  CherryPickTuner::Options opts;
  opts.bo_iterations = 10;
  CherryPickTuner tuner(opts);
  EXPECT_EQ(tuner.name(), "CherryPick");
  const auto result = tuner.Tune(&session, 200.0);
  EXPECT_GE(result.evaluations, 10);
  EXPECT_LT(result.best_observed_seconds, DefaultSeconds(&session, 200.0));
}

TEST(MakeBaselineTest, FactoryNames) {
  EXPECT_EQ(MakeBaseline("Tuneful")->name(), "Tuneful");
  EXPECT_EQ(MakeBaseline("DAC")->name(), "DAC");
  EXPECT_EQ(MakeBaseline("GBO-RL")->name(), "GBO-RL");
  EXPECT_EQ(MakeBaseline("QTune")->name(), "QTune");
  EXPECT_EQ(MakeBaseline("anything-else")->name(), "Random");
}

TEST(BoSearchTest, FindsBetterThanInitialPoints) {
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 5);
  auto session = MakeSession(&sim, "Join");
  Rng rng(5);
  BoSearch::Options opts;
  opts.iterations = 12;
  opts.candidates = 80;
  BoSearch bo(opts, &rng);
  const sparksim::SparkConf base =
      session.space().Repair(session.space().DefaultConf());
  bo.Run(&session, 150.0, AllParamIndices(), base, {});
  EXPECT_GT(bo.best_seconds(), 0.0);
  EXPECT_LT(bo.best_seconds(), DefaultSeconds(&session, 150.0));
  EXPECT_EQ(bo.trajectory().size(), 12u);
}

TEST(FrontendTest, NamesReflectMode) {
  QcsaIicpFrontend::Options both;
  EXPECT_EQ(QcsaIicpFrontend(MakeBaseline("DAC"), both).name(), "DAC+QIT");
  QcsaIicpFrontend::Options qcsa_only;
  qcsa_only.apply_iicp = false;
  EXPECT_EQ(QcsaIicpFrontend(MakeBaseline("DAC"), qcsa_only).name(),
            "DAC+QCSA");
  QcsaIicpFrontend::Options iicp_only;
  iicp_only.apply_qcsa = false;
  EXPECT_EQ(QcsaIicpFrontend(MakeBaseline("DAC"), iicp_only).name(),
            "DAC+IICP");
}

TEST(FrontendTest, QitReducesInnerTunerCost) {
  // The same inner tuner with QCSA+IICP retrofitted should spend less
  // simulated time than alone (Section 5.10's core claim), because the
  // inner tuner runs only the RQA.
  const auto app = workloads::TpcH();

  sparksim::ClusterSimulator sim_plain(sparksim::X86Cluster(), 6);
  core::TuningSession plain_session(&sim_plain, app);
  RandomSearchTuner::Options ropts;
  ropts.evaluations = 25;
  RandomSearchTuner plain(ropts);
  const auto plain_result = plain.Tune(&plain_session, 100.0);

  sparksim::ClusterSimulator sim_qit(sparksim::X86Cluster(), 6);
  core::TuningSession qit_session(&sim_qit, app);
  QcsaIicpFrontend::Options fopts;
  fopts.n_qcsa = 10;
  fopts.n_iicp = 8;
  QcsaIicpFrontend qit(std::make_unique<RandomSearchTuner>(ropts), fopts);
  const auto qit_result = qit.Tune(&qit_session, 100.0);

  ASSERT_NE(qit.qcsa_result(), nullptr);
  ASSERT_NE(qit.iicp_result(), nullptr);
  // 10 sample-collection runs + 25 RQA runs still cost less than 25 full
  // runs only when QCSA removes enough queries; verify the restriction
  // actually kicked in and the session was unrestricted afterwards.
  EXPECT_LT(qit.qcsa_result()->csq_indices.size(), 22u);
  EXPECT_FALSE(qit_session.restricted());
  EXPECT_GT(qit_result.evaluations, plain_result.evaluations);
}

TEST(FrontendTest, IicpRestrictsInnerSearchSpace) {
  const auto app = workloads::HiBenchJoin();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 7);
  core::TuningSession session(&sim, app);
  RandomSearchTuner::Options ropts;
  ropts.evaluations = 10;
  QcsaIicpFrontend::Options fopts;
  fopts.apply_qcsa = false;
  fopts.n_iicp = 10;
  QcsaIicpFrontend frontend(std::make_unique<RandomSearchTuner>(ropts),
                            fopts);
  const auto result = frontend.Tune(&session, 150.0);
  ASSERT_NE(frontend.iicp_result(), nullptr);
  EXPECT_GT(result.evaluations, 10);  // sample collection + inner runs
}

}  // namespace
}  // namespace locat::tuners
