// Micro benchmarks (google-benchmark) of the numerical kernels on LOCAT's
// hot path: GP fit/predict, EI-MCMC refit, KPCA fit/project, Cholesky
// factorization, and the cluster simulator itself.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "math/cholesky.h"
#include "ml/ei_mcmc.h"
#include "ml/gp.h"
#include "ml/kernels.h"
#include "ml/kpca.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

math::Matrix RandomMatrix(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  math::Matrix x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) x(i, j) = rng.NextDouble();
  }
  return x;
}

void BM_CholeskyFactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  math::Matrix b = RandomMatrix(n, n, 1);
  math::Matrix a = b * b.Transpose();
  a.AddToDiagonal(static_cast<double>(n));
  for (auto _ : state) {
    auto chol = math::Cholesky::Factor(a);
    benchmark::DoNotOptimize(chol);
  }
}
BENCHMARK(BM_CholeskyFactor)->Arg(30)->Arg(60)->Arg(120);

void BM_GpFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 10;
  math::Matrix x = RandomMatrix(n, d, 2);
  math::Vector y(n);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) y[i] = rng.NextDouble();
  const auto hp = ml::GpHyperparams::Default(d);
  for (auto _ : state) {
    ml::GaussianProcess gp;
    benchmark::DoNotOptimize(gp.Fit(x, y, hp).ok());
  }
}
BENCHMARK(BM_GpFit)->Arg(30)->Arg(60)->Arg(90);

void BM_GpPredict(benchmark::State& state) {
  const size_t n = 60;
  const size_t d = 10;
  math::Matrix x = RandomMatrix(n, d, 4);
  math::Vector y(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) y[i] = rng.NextDouble();
  ml::GaussianProcess gp;
  (void)gp.Fit(x, y, ml::GpHyperparams::Default(d));
  const math::Vector probe(d, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.Predict(probe));
  }
}
BENCHMARK(BM_GpPredict);

void BM_EiMcmcRefit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 10;
  math::Matrix x = RandomMatrix(n, d, 6);
  math::Vector y(n);
  Rng data_rng(7);
  for (size_t i = 0; i < n; ++i) y[i] = data_rng.NextDouble();
  Rng rng(8);
  ml::EiMcmc::Options opts;
  opts.num_hyper_samples = 6;
  opts.burn_in = 8;
  for (auto _ : state) {
    ml::EiMcmc model(opts);
    benchmark::DoNotOptimize(model.Fit(x, y, &rng).ok());
  }
}
BENCHMARK(BM_EiMcmcRefit)->Arg(30)->Arg(60);

void BM_KpcaFitProject(benchmark::State& state) {
  math::Matrix x = RandomMatrix(30, 25, 9);
  ml::GaussianKernel kernel(2.0);
  const math::Vector probe(25, 0.5);
  for (auto _ : state) {
    ml::Kpca kpca;
    (void)kpca.Fit(x, &kernel);
    benchmark::DoNotOptimize(kpca.Project(probe));
  }
}
BENCHMARK(BM_KpcaFitProject);

void BM_SimulatorTpcdsRun(benchmark::State& state) {
  const auto app = workloads::TpcDs();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 10);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(11);
  const auto conf = space.RandomValid(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunApp(app, conf, 300.0).total_seconds);
  }
}
BENCHMARK(BM_SimulatorTpcdsRun);

void BM_SimulatorQuery(benchmark::State& state) {
  const auto app = workloads::TpcDs();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 12);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(13);
  const auto conf = space.RandomValid(&rng);
  const auto& q72 = app.queries[static_cast<size_t>(app.IndexOf("q72"))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunQuery(q72, conf, 300.0).exec_seconds);
  }
}
BENCHMARK(BM_SimulatorQuery);

}  // namespace

BENCHMARK_MAIN();
