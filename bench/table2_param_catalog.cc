// Table 2: the 38 configuration parameters with defaults and per-cluster
// value ranges.
#include <iostream>

#include "bench/bench_util.h"
#include "sparksim/config.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout, "Table 2: Description of Selected Parameters");
  sparksim::ConfigSpace arm(sparksim::ArmCluster());
  sparksim::ConfigSpace x86(sparksim::X86Cluster());

  TablePrinter tp({"parameter", "kind", "default", "Range A (ARM)",
                   "Range B (x86)", "resource*"});
  int numeric = 0;
  int booleans = 0;
  for (int i = 0; i < sparksim::kNumParams; ++i) {
    const auto& spec = arm.spec(i);
    std::string kind;
    std::string range_a;
    std::string range_b;
    switch (spec.kind) {
      case sparksim::ParamKind::kBool:
        kind = "bool";
        range_a = range_b = "true, false";
        ++booleans;
        break;
      case sparksim::ParamKind::kReal:
        kind = "real";
        range_a = bench::Num(arm.lo(i), 1) + " - " + bench::Num(arm.hi(i), 1);
        range_b = bench::Num(x86.lo(i), 1) + " - " + bench::Num(x86.hi(i), 1);
        ++numeric;
        break;
      case sparksim::ParamKind::kInt:
        kind = "int";
        range_a = bench::Num(arm.lo(i), 0) + " - " + bench::Num(arm.hi(i), 0);
        range_b = bench::Num(x86.lo(i), 0) + " - " + bench::Num(x86.hi(i), 0);
        ++numeric;
        break;
    }
    const std::string def =
        spec.name == "spark.default.parallelism"
            ? "#"
            : bench::Num(spec.default_value,
                         spec.kind == sparksim::ParamKind::kReal ? 2 : 0);
    tp.AddRow({spec.name, kind, def, range_a, range_b,
               spec.is_resource ? "*" : ""});
  }
  tp.Print(std::cout);
  std::cout << "\nTotals: " << numeric << " numeric + " << booleans
            << " boolean = " << sparksim::kNumParams << " parameters.\n"
            << "(# = derived from the cluster: total worker cores.)\n";
  return 0;
}
