// Section 5.11: why are some queries configuration sensitive? The paper's
// answer: selection queries barely use the shuffle machinery, while
// join/aggregation queries with large shuffle volumes stress the memory,
// network and parallelism knobs. This bench prints the shuffle volume and
// sensitivity class of representative TPC-DS queries at 100 GB.
#include <iostream>

#include "bench/bench_util.h"
#include "core/qcsa.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Section 5.11: query category vs shuffle volume vs "
              "sensitivity (TPC-DS, 100 GB, x86)");

  const auto app = workloads::TpcDs();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1001);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(2002);

  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  std::vector<double> shuffle_gb(static_cast<size_t>(app.num_queries()), 0.0);
  for (int run = 0; run < 30; ++run) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
      shuffle_gb[q] += result.per_query[q].shuffle_gb / 30.0;
    }
  }
  const auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (!qcsa.ok()) return 1;

  auto category_name = [](sparksim::QueryCategory c) {
    switch (c) {
      case sparksim::QueryCategory::kSelection:
        return "selection";
      case sparksim::QueryCategory::kJoin:
        return "join";
      default:
        return "aggregation";
    }
  };

  TablePrinter tp({"query", "category", "avg shuffle (GB)", "CV", "class"});
  for (const char* name :
       {"q72", "q29", "q14b", "q43", "q99",            // heavy CSQs
        "q08", "q04",                                   // famous CIQs
        "q09", "q13", "q28", "q88", "q96"}) {           // selection CIQs
    const int idx = app.IndexOf(name);
    if (idx < 0) continue;
    const size_t q = static_cast<size_t>(idx);
    tp.AddRow({name, category_name(app.queries[q].category),
               bench::Num(shuffle_gb[q], 2), bench::Num(qcsa->cv[q], 2),
               qcsa->cv[q] >= qcsa->threshold ? "CSQ" : "CIQ"});
  }
  tp.Print(std::cout);

  // Aggregate statistics per class.
  double csq_shuffle = 0.0;
  double ciq_shuffle = 0.0;
  for (int idx : qcsa->csq_indices) {
    csq_shuffle += shuffle_gb[static_cast<size_t>(idx)];
  }
  for (int idx : qcsa->ciq_indices) {
    ciq_shuffle += shuffle_gb[static_cast<size_t>(idx)];
  }
  std::cout << "\nAverage shuffle volume: CSQ "
            << bench::Num(csq_shuffle /
                              std::max<size_t>(1, qcsa->csq_indices.size()),
                          1)
            << " GB vs CIQ "
            << bench::Num(ciq_shuffle /
                              std::max<size_t>(1, qcsa->ciq_indices.size()),
                          2)
            << " GB per query.\n";
  std::cout << "Paper: Q72's shuffles process 52 GB (sensitive) while Q08's "
               "process only 5 MB (insensitive); simple selection queries "
               "use ~5 cores and ~8 GB and do not respond to tuning.\n";
  return 0;
}
