// Ablation (Section 2.2 / 3.4): the paper chooses EI with MCMC
// hyperparameter marginalization over plain EI, PI and GP-UCB. We run
// LOCAT with each acquisition on TPC-H (300 GB) and compare the tuned
// runtime and overhead (2 seeds each).
#include <iostream>

#include "bench/bench_util.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

struct Variant {
  const char* label;
  ml::AcquisitionKind kind;
  int hyper_samples;
};

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Ablation: acquisition function inside LOCAT "
              "(TPC-H, 300 GB, x86; mean of 2 seeds)");

  const Variant variants[] = {
      {"EI-MCMC (paper)", ml::AcquisitionKind::kExpectedImprovement, 10},
      {"EI (single fit)", ml::AcquisitionKind::kExpectedImprovement, 1},
      {"PI-MCMC", ml::AcquisitionKind::kProbabilityOfImprovement, 10},
      {"GP-UCB-MCMC", ml::AcquisitionKind::kUcb, 10},
  };

  TablePrinter tp({"acquisition", "tuned run (s)", "overhead (h)"});
  const auto app = workloads::TpcH();
  for (const Variant& v : variants) {
    double tuned_sum = 0.0;
    double overhead_sum = 0.0;
    for (uint64_t seed : {1ULL, 2ULL}) {
      sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 4000 + seed);
      core::TuningSession session(&sim, app);
      core::LocatTuner::Options opts;
      opts.seed = 10 + seed;
      opts.dagp.ei.acquisition = v.kind;
      opts.dagp.ei.num_hyper_samples = v.hyper_samples;
      core::LocatTuner tuner(opts);
      const auto result = tuner.Tune(&session, 300.0);
      tuned_sum +=
          session.MeasureFinal(result.best_conf, 300.0).total_seconds;
      overhead_sum += result.optimization_seconds;
    }
    tp.AddRow({v.label, bench::Num(tuned_sum / 2.0, 0),
               bench::Num(overhead_sum / 2.0 / 3600.0, 1)});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: EI-MCMC 'has shown better performance compared to "
               "other acquisition functions across a wide range of test "
               "cases' (Snoek et al.), which is why LOCAT adopts it. Note "
               "the UCB variant also disables the relative-EI stop rule's "
               "semantics, so its overhead is the iteration cap.\n";
  return 0;
}
