// Figure 13: speedups of the 25 program-input pairs tuned by LOCAT over
// the same pairs tuned by the SOTA approaches (ARM cluster).
#include <iostream>

#include "bench/bench_util.h"

int main() {
  locat::PrintBanner(std::cout,
                     "Figure 13: speedup of LOCAT-tuned configurations "
                     "over SOTA-tuned (ARM cluster, 25 program-input "
                     "pairs)");
  locat::bench::PrintSpeedupComparison(
      "arm",
      "Paper averages (ARM): 2.4x vs Tuneful, 2.2x vs DAC, 2.0x vs GBO-RL, "
      "1.9x vs QTune.");
  return 0;
}
