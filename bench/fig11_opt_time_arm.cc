// Figure 11: optimization-time reduction of LOCAT over the SOTA tuners on
// the four-node ARM cluster (300 GB inputs). The ratio is
// (SOTA optimization time) / (LOCAT optimization time).
#include <iostream>

#include "bench/bench_util.h"

int main() {
  locat::PrintBanner(std::cout,
                     "Figure 11: optimization-time reduction vs SOTA "
                     "(ARM cluster, 300 GB)");
  locat::bench::PrintOptTimeComparison(
      "arm",
      "Paper averages (ARM): Tuneful 6.4x, DAC 7.0x, GBO-RL 4.1x, QTune "
      "9.7x.");
  return 0;
}
