// Figure 21: retrofitting QCSA and IICP onto the SOTA tuners (Section
// 5.10). APT = the plain baseline tuning all parameters; +QCSA runs the
// baseline on the reduced query application; +IICP restricts its search
// to the CPS-selected parameters; +QIT applies both. TPC-DS, 500 GB.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 21: QCSA/IICP retrofitted onto the SOTA tuners "
              "(TPC-DS, 500 GB, x86)");

  harness::CellSpec locat_spec;
  locat_spec.tuner = "LOCAT";
  locat_spec.app = "TPC-DS";
  locat_spec.cluster = "x86";
  locat_spec.datasize_gb = 500.0;
  const auto locat_cell = bench::Runner().Run(locat_spec);

  TablePrinter perf({"tuner", "APT (s)", "+QCSA (s)", "+IICP (s)",
                     "+QIT (s)", "QIT gain"});
  TablePrinter cost({"tuner", "APT (h)", "+QCSA (h)", "+IICP (h)",
                     "+QIT (h)", "QIT reduction"});
  for (const std::string& base : harness::SotaTunerNames()) {
    std::vector<double> best;
    std::vector<double> hours;
    for (const char* mode : {"", "+QCSA", "+IICP", "+QIT"}) {
      harness::CellSpec spec;
      spec.tuner = base + mode;
      spec.app = "TPC-DS";
      spec.cluster = "x86";
      spec.datasize_gb = 500.0;
      const auto r = bench::Runner().Run(spec);
      best.push_back(r.best_app_seconds);
      hours.push_back(r.optimization_seconds / 3600.0);
    }
    perf.AddRow({base, bench::Num(best[0], 0), bench::Num(best[1], 0),
                 bench::Num(best[2], 0), bench::Num(best[3], 0),
                 bench::Num(best[0] / best[3], 2) + "x"});
    cost.AddRow({base, bench::Num(hours[0], 1), bench::Num(hours[1], 1),
                 bench::Num(hours[2], 1), bench::Num(hours[3], 1),
                 bench::Num(hours[0] / hours[3], 2) + "x"});
  }
  std::cout << "\n(a) Optimized performance (full TPC-DS run under the "
               "tuned configuration):\n";
  perf.Print(std::cout);
  std::cout << "    DAGP/LOCAT reference: "
            << bench::Num(locat_cell.best_app_seconds, 0) << " s\n";
  std::cout << "\n(b) Optimization overhead:\n";
  cost.Print(std::cout);
  std::cout << "    DAGP/LOCAT reference: "
            << bench::Num(locat_cell.optimization_seconds / 3600.0, 1)
            << " h\n";
  bench::Runner().Save();
  std::cout << "\nPaper: QIT improves the SOTA-tuned performance by 2.6x on "
               "average and cuts their overhead by 6.8x on average; QCSA "
               "contributes most of the overhead reduction, IICP most of "
               "the performance gain.\n";
  return 0;
}
