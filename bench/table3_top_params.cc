// Table 3: the five most important configuration parameters (by CPS
// Spearman strength) for TPC-DS at 100 GB, 500 GB and 1 TB. The paper's
// top parameter is always spark.sql.shuffle.partitions; at 1 TB
// spark.memory.offHeap.size enters the top five.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Table 3: top-5 important parameters for TPC-DS by input size "
              "(CPS averaged over 4 x 60 random runs, x86)");

  const auto app = workloads::TpcDs();
  TablePrinter tp({"rank", "100GB", "500GB", "1TB"});
  std::vector<std::vector<std::string>> columns;

  for (double ds : {100.0, 500.0, 1000.0}) {
    // The per-sample-set SCC estimate is noisy at IICP's sample counts;
    // for a *stable ranking* (the paper reports a converged table) we
    // average |SCC| over several independent sample sets.
    std::vector<double> scc_mean(sparksim::kNumParams, 0.0);
    const int reps = 4;
    for (int rep = 0; rep < reps; ++rep) {
      sparksim::ClusterSimulator sim(sparksim::X86Cluster(),
                                     1500 + static_cast<uint64_t>(rep));
      sparksim::ConfigSpace space(sim.cluster());
      Rng rng(1510 + static_cast<uint64_t>(rep));
      const int n = 60;
      math::Matrix confs(n, sparksim::kNumParams);
      std::vector<double> times(n);
      for (int i = 0; i < n; ++i) {
        const auto conf = space.RandomValid(&rng);
        confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
        times[static_cast<size_t>(i)] =
            sim.RunApp(app, conf, ds).total_seconds;
      }
      const auto iicp = core::Iicp::Run(confs, times);
      if (!iicp.ok()) continue;
      for (int pnum = 0; pnum < sparksim::kNumParams; ++pnum) {
        scc_mean[static_cast<size_t>(pnum)] +=
            iicp->spearman_abs()[static_cast<size_t>(pnum)] / reps;
      }
    }
    sparksim::ConfigSpace space(sparksim::X86Cluster());
    std::vector<int> order(sparksim::kNumParams);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return scc_mean[static_cast<size_t>(a)] >
             scc_mean[static_cast<size_t>(b)];
    });
    std::vector<std::string> top;
    for (int r = 0; r < 5; ++r) {
      const auto& name = space.spec(order[static_cast<size_t>(r)]).name;
      top.push_back(name.substr(6));  // drop the "spark." prefix
    }
    columns.push_back(std::move(top));
  }
  for (int r = 0; r < 5; ++r) {
    tp.AddRow({std::to_string(r + 1),
               columns[0].size() > static_cast<size_t>(r) ? columns[0][r] : "",
               columns[1].size() > static_cast<size_t>(r) ? columns[1][r] : "",
               columns[2].size() > static_cast<size_t>(r) ? columns[2][r]
                                                          : ""});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: sql.shuffle.partitions ranks first at every size; "
               "executor.memory/instances/cores and shuffle.compress fill "
               "the top five; memory.offHeap.size enters at 1 TB.\n";
  return 0;
}
