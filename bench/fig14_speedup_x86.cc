// Figure 14: speedups of the 25 program-input pairs tuned by LOCAT over
// the same pairs tuned by the SOTA approaches (x86 cluster).
#include <iostream>

#include "bench/bench_util.h"

int main() {
  locat::PrintBanner(std::cout,
                     "Figure 14: speedup of LOCAT-tuned configurations "
                     "over SOTA-tuned (x86 cluster, 25 program-input "
                     "pairs)");
  locat::bench::PrintSpeedupComparison(
      "x86",
      "Paper averages (x86): 2.8x vs Tuneful, 2.6x vs DAC, 2.3x vs GBO-RL, "
      "2.1x vs QTune.");
  return 0;
}
