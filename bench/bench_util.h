#ifndef LOCAT_BENCH_BENCH_UTIL_H_
#define LOCAT_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "harness/experiments.h"

namespace locat::bench {

/// Shared experiment runner for all bench binaries; uses the default
/// on-disk cache ($LOCAT_CACHE_DIR/results.csv or ./.locat_cache) so the
/// expensive comparison grid is computed once across binaries.
inline harness::ExperimentRunner& Runner() {
  static harness::ExperimentRunner& runner =
      *new harness::ExperimentRunner();
  return runner;
}

/// The five benchmark app names of Table 1, paper order.
inline const std::vector<std::string>& AppNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"TPC-DS", "TPC-H", "Join", "Scan",
                                    "Aggregation"};
  return names;
}

inline std::string Num(double v, int precision = 2) {
  return TablePrinter::Num(v, precision);
}

/// Fills the cache for a list of cells and saves it.
inline void Warm(const std::vector<harness::CellSpec>& specs) {
  Runner().RunAll(specs, 0);
  Runner().Save();
}

/// All (tuner x app x ds) cells for one cluster — the grid behind
/// Figures 11-14 and 18-20.
inline std::vector<harness::CellSpec> ComparisonGrid(
    const std::string& cluster) {
  std::vector<harness::CellSpec> specs;
  for (const std::string& app : AppNames()) {
    for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
      for (const std::string& tuner :
           {std::string("LOCAT"), std::string("Tuneful"), std::string("DAC"),
            std::string("GBO-RL"), std::string("QTune")}) {
        harness::CellSpec spec;
        spec.tuner = tuner;
        spec.app = app;
        spec.cluster = cluster;
        spec.datasize_gb = ds;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

/// Prints the Figure 11/12 optimization-time comparison for one cluster.
inline void PrintOptTimeComparison(const std::string& cluster,
                                   const std::string& paper_line) {
  TablePrinter tp({"application", "LOCAT (h)", "Tuneful (x)", "DAC (x)",
                   "GBO-RL (x)", "QTune (x)"});
  double sums[4] = {0, 0, 0, 0};
  int count = 0;
  for (const std::string& app : AppNames()) {
    harness::CellSpec spec;
    spec.app = app;
    spec.cluster = cluster;
    spec.datasize_gb = 300.0;
    spec.tuner = "LOCAT";
    const double locat_h = Runner().Run(spec).optimization_seconds / 3600.0;
    std::vector<std::string> row = {app, Num(locat_h, 1)};
    int i = 0;
    for (const std::string& tuner : harness::SotaTunerNames()) {
      spec.tuner = tuner;
      const double ratio =
          Runner().Run(spec).optimization_seconds / 3600.0 / locat_h;
      sums[i++] += ratio;
      row.push_back(Num(ratio, 1));
    }
    ++count;
    tp.AddRow(row);
  }
  tp.AddRow({"average", "", Num(sums[0] / count, 1), Num(sums[1] / count, 1),
             Num(sums[2] / count, 1), Num(sums[3] / count, 1)});
  tp.Print(std::cout);
  Runner().Save();
  std::cout << "\n" << paper_line << "\n";
}

/// Prints the Figure 13/14 speedup comparison for one cluster: for every
/// (application, data size) pair, execution time tuned by a SOTA approach
/// divided by execution time tuned by LOCAT.
inline void PrintSpeedupComparison(const std::string& cluster,
                                   const std::string& paper_line) {
  TablePrinter tp({"application", "ds (GB)", "LOCAT (s)", "vs Tuneful",
                   "vs DAC", "vs GBO-RL", "vs QTune"});
  double sums[4] = {0, 0, 0, 0};
  int count = 0;
  for (const std::string& app : AppNames()) {
    for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
      harness::CellSpec spec;
      spec.app = app;
      spec.cluster = cluster;
      spec.datasize_gb = ds;
      spec.tuner = "LOCAT";
      const double locat_s = Runner().Run(spec).best_app_seconds;
      std::vector<std::string> row = {app, Num(ds, 0), Num(locat_s, 0)};
      int i = 0;
      for (const std::string& tuner : harness::SotaTunerNames()) {
        spec.tuner = tuner;
        const double speedup =
            Runner().Run(spec).best_app_seconds / locat_s;
        sums[i++] += speedup;
        row.push_back(Num(speedup, 2));
      }
      ++count;
      tp.AddRow(row);
    }
  }
  tp.AddRow({"average", "", "", Num(sums[0] / count, 2),
             Num(sums[1] / count, 2), Num(sums[2] / count, 2),
             Num(sums[3] / count, 2)});
  tp.Print(std::cout);
  Runner().Save();
  std::cout << "\n" << paper_line << "\n";
}

}  // namespace locat::bench

#endif  // LOCAT_BENCH_BENCH_UTIL_H_
