// Serving-registry bench: 200 simulated applications with drifting input
// sizes driven through core::ServiceRegistry.
//
// Cases, all hand-rolled steady_clock timing, written to
// BENCH_service.json:
//   scale:  admit kApps apps (capacity-limited so the LRU evicts),
//           drift every app's size across rounds, then probe warm
//           lookups one by one — p50/p99 warm lookup latency comes from
//           the sorted raw samples (not histogram buckets). Acceptance
//           bar: warm p99 <= 50 us. Retune throughput is total tuning
//           passes over the drive-phase wall clock; a TTL phase idles
//           half the survivors to exercise ttl eviction too.
//   determinism: a fixed 40-app trace served twice — tuning inline on
//           the requesting thread vs an 8-thread pool with concurrent
//           per-round drivers — must produce byte-identical confs.
//   warm_vs_cold: three donor apps tuned with a production budget seed a
//           similar new app's surrogate (observations + CSQ hint); the
//           warm app must reach within 5% of the cold-tuned noise-free
//           cost in at most half the tuning iterations (observations).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/online_service.h"
#include "core/service_registry.h"
#include "core/tuning.h"
#include "sparksim/properties_io.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;
using Clock = std::chrono::steady_clock;

int g_apps = 200;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Tiny tuning budgets: the bench measures the registry, not the BO.
core::OnlineTuningService::Options TinyOptions() {
  core::OnlineTuningService::Options opts;
  opts.tuner.n_qcsa = 6;
  opts.tuner.n_iicp = 5;
  opts.tuner.lhs_init = 2;
  opts.tuner.min_iterations = 2;
  opts.tuner.max_iterations = 3;
  opts.tuner.warm_iterations = 2;
  opts.tuner.candidates = 40;
  opts.tuner.seed = 31;
  return opts;
}

uint64_t NameSeed(const std::string& name) {
  uint64_t h = 0;
  for (unsigned char c : name) h = h * 131 + c;
  return 900 + h % 4096;
}

/// Synthesizes app #i: one of the five base workloads with deterministic
/// per-index perturbations, so 200 apps span ~40 variants per family.
sparksim::SparkSqlApp MakeApp(int i, const std::string& name) {
  static const std::vector<sparksim::SparkSqlApp> bases =
      workloads::AllBenchmarks();
  sparksim::SparkSqlApp app = bases[static_cast<size_t>(i) % bases.size()];
  app.name = name;
  const double cpu_f = 1.0 + 0.03 * static_cast<double>(i % 7);
  const double mem_f = 1.0 + 0.02 * static_cast<double>((i / 7) % 5);
  for (auto& q : app.queries) {
    q.cpu_per_gb *= cpu_f;
    q.mem_per_task_factor *= mem_f;
  }
  return app;
}

/// Simulator + session + service per app; sessions stay reachable so the
/// warm_vs_cold case can read evaluation counts.
class BenchBackend : public core::AppBackend {
 public:
  BenchBackend(sparksim::SparkSqlApp app,
               const core::OnlineTuningService::Options& opts,
               core::TuningSession** session_out,
               core::OnlineTuningService** service_out = nullptr)
      : app_(std::move(app)),
        sim_(std::make_unique<sparksim::ClusterSimulator>(
            sparksim::X86Cluster(), NameSeed(app_.name))),
        session_(std::make_unique<core::TuningSession>(sim_.get(), app_)),
        service_(std::make_unique<core::OnlineTuningService>(session_.get(),
                                                             opts)) {
    if (session_out != nullptr) *session_out = session_.get();
    if (service_out != nullptr) *service_out = service_.get();
  }

  core::OnlineTuningService* service() override { return service_.get(); }
  const sparksim::SparkSqlApp& app() const override { return app_; }

 private:
  sparksim::SparkSqlApp app_;
  std::unique_ptr<sparksim::ClusterSimulator> sim_;
  std::unique_ptr<core::TuningSession> session_;
  std::unique_ptr<core::OnlineTuningService> service_;
};

struct ScaleResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double retunes = 0.0;
  double retune_per_s = 0.0;
  double evict_cap = 0.0;
  double evict_ttl = 0.0;
  double warm_starts = 0.0;
};

ScaleResult CaseScale() {
  std::map<std::string, sparksim::SparkSqlApp> apps;
  std::vector<std::string> names;
  for (int i = 0; i < g_apps; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "app-%03d", i);
    names.emplace_back(buf);
    apps.emplace(buf, MakeApp(i, buf));
  }

  core::ServiceRegistry::Options ropts;
  ropts.capacity = static_cast<size_t>(3 * g_apps / 4);
  ropts.ttl_ticks = 3;
  ropts.tune_threads = 4;
  core::ServiceRegistry registry(
      [&apps](const std::string& name)
          -> std::unique_ptr<core::AppBackend> {
        const auto it = apps.find(name);
        if (it == apps.end()) return nullptr;
        return std::make_unique<BenchBackend>(it->second, TinyOptions(),
                                              nullptr);
      },
      ropts);

  // Drive phase: every app drifts 100 -> 108 (reuse) -> 400 (re-tune),
  // with concurrent drivers inside each round and a tick barrier after.
  static const double kSizes[] = {100.0, 108.0, 400.0};
  common::ThreadPool drivers(8);
  const auto t0 = Clock::now();
  for (int r = 0; r < 3; ++r) {
    drivers.ParallelForEach(names.size(), [&](size_t ai) {
      const auto conf = registry.Lookup(names[ai], kSizes[r]);
      if (!conf.ok()) {
        std::fprintf(stderr, "scale: lookup failed: %s\n",
                     conf.status().ToString().c_str());
        std::abort();
      }
    });
    registry.AdvanceTick();
  }
  const double drive_s = Seconds(t0, Clock::now());

  // Warm-probe phase: every live app already covers its last size, so
  // each Lookup is the lock-free fast path. Raw per-call samples give the
  // latency quantiles; the coarse histogram is not good enough here.
  std::vector<std::pair<std::string, double>> live;
  for (const auto& row : registry.AppRows()) {
    live.emplace_back(row.snapshot.app, row.snapshot.last_datasize_gb);
  }
  std::vector<double> samples;
  samples.reserve(5000);
  while (samples.size() < 5000) {
    for (const auto& [name, ds] : live) {
      const auto p0 = Clock::now();
      const auto conf = registry.Lookup(name, ds);
      const auto p1 = Clock::now();
      if (!conf.ok()) {
        std::fprintf(stderr, "scale: warm probe failed for %s\n",
                     name.c_str());
        std::abort();
      }
      samples.push_back(Seconds(p0, p1));
      if (samples.size() >= 5000) break;
    }
  }
  std::sort(samples.begin(), samples.end());

  // TTL phase: idle the second half of the live set for ttl_ticks+1
  // barriers while the first half stays warm.
  const size_t keep = live.size() / 2;
  for (int t = 0; t < ropts.ttl_ticks + 1; ++t) {
    for (size_t i = 0; i < keep; ++i) {
      (void)registry.Lookup(live[i].first, live[i].second);
    }
    registry.AdvanceTick();
  }

  const auto stats = registry.GetStats();
  ScaleResult out;
  out.p50_us = 1e6 * samples[samples.size() / 2];
  out.p99_us = 1e6 * samples[samples.size() * 99 / 100];
  out.retunes = static_cast<double>(stats.retunes_cold + stats.retunes_drift);
  out.retune_per_s = out.retunes / drive_s;
  out.evict_cap = static_cast<double>(stats.evictions_capacity);
  out.evict_ttl = static_cast<double>(stats.evictions_ttl);
  out.warm_starts = static_cast<double>(stats.warm_start_hits);

  if (out.p99_us > 50.0) {
    std::fprintf(stderr, "scale: warm lookup p99 %.1f us exceeds 50 us\n",
                 out.p99_us);
    std::abort();
  }
  if (out.evict_cap == 0.0 || out.evict_ttl == 0.0) {
    std::fprintf(stderr, "scale: eviction never fired (cap %.0f, ttl %.0f)\n",
                 out.evict_cap, out.evict_ttl);
    std::abort();
  }
  return out;
}

/// Serves a fixed trace and returns every conf as a properties string.
std::vector<std::string> DetTrace(int tune_threads, int driver_threads) {
  constexpr int kDetApps = 40;
  std::map<std::string, sparksim::SparkSqlApp> apps;
  std::vector<std::string> names;
  for (int i = 0; i < kDetApps; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "det-%02d", i);
    names.emplace_back(buf);
    apps.emplace(buf, MakeApp(i, buf));
  }
  core::ServiceRegistry::Options ropts;
  ropts.capacity = 32;
  ropts.ttl_ticks = 2;
  ropts.tune_threads = tune_threads;
  core::ServiceRegistry registry(
      [&apps](const std::string& name)
          -> std::unique_ptr<core::AppBackend> {
        return std::make_unique<BenchBackend>(apps.at(name), TinyOptions(),
                                              nullptr);
      },
      ropts);

  static const double kSizes[] = {100.0, 120.0, 300.0, 330.0, 500.0};
  common::ThreadPool drivers(driver_threads);
  std::vector<std::string> served;
  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> round(names.size());
    drivers.ParallelForEach(names.size(), [&](size_t ai) {
      const double ds = kSizes[(static_cast<size_t>(r) + ai) % 5];
      const auto conf = registry.Lookup(names[ai], ds);
      if (conf.ok()) {
        round[ai] = sparksim::SparkPropertiesToString(*conf);
      }
    });
    registry.AdvanceTick();
    for (auto& s : round) {
      if (s.empty()) {
        std::fprintf(stderr, "determinism: a lookup failed in round %d\n", r);
        std::abort();
      }
      served.push_back(std::move(s));
    }
  }
  return served;
}

bool CaseDeterminism() {
  const std::vector<std::string> inline_run = DetTrace(1, 1);
  const std::vector<std::string> pooled_run = DetTrace(8, 8);
  if (inline_run != pooled_run) {
    std::fprintf(stderr,
                 "determinism: served confs diverged between inline and "
                 "8-thread serving\n");
    std::abort();
  }
  return true;
}

struct WarmColdResult {
  double cold_iters = 0.0;   // tuner observations (retries collapse)
  double warm_iters = 0.0;
  double cold_evals = 0.0;   // session evaluations (retries included)
  double warm_evals = 0.0;
  double cold_nf_s = 0.0;
  double warm_nf_s = 0.0;
  double cost_ratio() const { return warm_nf_s / cold_nf_s; }
};

WarmColdResult CaseWarmVsCold() {
  // Donors and the newcomer are close TPC-H variants; the newcomer's
  // backend (app profile + simulator seed) is identical in both arms, so
  // any difference comes from the transferred priors alone. The donors
  // tune with a production-sized budget — a donor only holds genuinely
  // good configurations (and a trustworthy CSQ) when it could afford a
  // real search; the newcomer keeps the small online budget in both arms.
  core::OnlineTuningService::Options sopts;
  sopts.tuner.n_qcsa = 8;
  sopts.tuner.n_iicp = 6;
  sopts.tuner.lhs_init = 2;
  sopts.tuner.min_iterations = 4;
  sopts.tuner.max_iterations = 6;
  sopts.tuner.warm_iterations = 3;
  sopts.tuner.candidates = 60;
  sopts.tuner.seed = 31;

  core::OnlineTuningService::Options bopts;  // donor (production) budget
  bopts.tuner.n_qcsa = 12;
  bopts.tuner.n_iicp = 8;
  bopts.tuner.lhs_init = 3;
  bopts.tuner.min_iterations = 8;
  bopts.tuner.max_iterations = 14;
  bopts.tuner.warm_iterations = 5;
  bopts.tuner.candidates = 240;
  bopts.tuner.seed = 31;

  std::map<std::string, sparksim::SparkSqlApp> apps;
  for (int d = 0; d < 3; ++d) {
    const std::string name = "donor-" + std::to_string(d);
    apps.emplace(name, MakeApp(1 + 5 * d, name));  // TPC-H family variants
  }
  apps.emplace("newcomer", MakeApp(1 + 5 * 3, "newcomer"));

  std::map<std::string, core::TuningSession*> sessions;
  std::map<std::string, core::OnlineTuningService*> services;
  auto factory = [&](const std::string& name)
      -> std::unique_ptr<core::AppBackend> {
    const bool donor = name.rfind("donor-", 0) == 0;
    return std::make_unique<BenchBackend>(apps.at(name),
                                          donor ? bopts : sopts,
                                          &sessions[name], &services[name]);
  };

  WarmColdResult out;
  sparksim::SparkConf cold_conf;
  sparksim::SparkConf warm_conf;
  {
    core::ServiceRegistry::Options ropts;
    ropts.warm_start = false;
    core::ServiceRegistry cold(factory, ropts);
    const auto conf = cold.Lookup("newcomer", 150.0);
    if (!conf.ok()) std::abort();
    cold_conf = *conf;
    out.cold_iters = static_cast<double>(
        services["newcomer"]->tuner().num_observations());
    out.cold_evals = static_cast<double>(sessions["newcomer"]->evaluations());
  }
  {
    core::ServiceRegistry::Options ropts;
    ropts.warm_start = true;
    ropts.transfer_cap = 24;
    core::ServiceRegistry warm(factory, ropts);
    for (int d = 0; d < 3; ++d) {
      if (!warm.Lookup("donor-" + std::to_string(d), 150.0).ok() ||
          !warm.Lookup("donor-" + std::to_string(d), 400.0).ok()) {
        std::abort();
      }
    }
    warm.AdvanceTick();  // donor knowledge lands in the transfer store
    const auto conf = warm.Lookup("newcomer", 150.0);
    if (!conf.ok()) std::abort();
    warm_conf = *conf;
    out.warm_iters = static_cast<double>(
        services["newcomer"]->tuner().num_observations());
    out.warm_evals = static_cast<double>(sessions["newcomer"]->evaluations());
    const auto row = warm.GetAppRow("newcomer");
    if (!row.has_value() || !row->warm_started) {
      std::fprintf(stderr, "warm_vs_cold: newcomer was not warm-started\n");
      std::abort();
    }
  }

  // Judge both confs on a fresh noise-free simulator: same app, no
  // measurement noise, no tuning history.
  sparksim::SimParams nf;
  nf.noise_sigma = 0.0;
  const auto& app = apps.at("newcomer");
  sparksim::ClusterSimulator cold_sim(sparksim::X86Cluster(), 1, nf);
  out.cold_nf_s = cold_sim.RunApp(app, cold_conf, 150.0).total_seconds;
  sparksim::ClusterSimulator warm_sim(sparksim::X86Cluster(), 1, nf);
  out.warm_nf_s = warm_sim.RunApp(app, warm_conf, 150.0).total_seconds;

  if (out.warm_nf_s > 1.05 * out.cold_nf_s) {
    std::fprintf(stderr,
                 "warm_vs_cold: warm conf %.1f s is worse than 1.05x the "
                 "cold conf %.1f s\n",
                 out.warm_nf_s, out.cold_nf_s);
    std::abort();
  }
  // Iterations are tuner observations: retries of a flaky run collapse
  // into one, so the count reflects search effort, not luck with the
  // failure injector.
  if (out.warm_iters > out.cold_iters / 2.0) {
    std::fprintf(stderr,
                 "warm_vs_cold: warm start took %.0f iterations, more than "
                 "half the cold %.0f\n",
                 out.warm_iters, out.cold_iters);
    std::abort();
  }
  return out;
}

void WriteJson(const std::string& path, const ScaleResult& scale,
               bool deterministic, const WarmColdResult& wc) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(6);
  os << "{\n"
     << "  \"benchmark\": \"service\",\n"
     << "  \"apps\": " << g_apps << ",\n"
     << "  \"warm_lookup_p50_us\": " << scale.p50_us << ",\n"
     << "  \"warm_lookup_p99_us\": " << scale.p99_us << ",\n"
     << "  \"retunes\": " << scale.retunes << ",\n"
     << "  \"retune_throughput_per_s\": " << scale.retune_per_s << ",\n"
     << "  \"evictions_capacity\": " << scale.evict_cap << ",\n"
     << "  \"evictions_ttl\": " << scale.evict_ttl << ",\n"
     << "  \"warm_start_hits\": " << scale.warm_starts << ",\n"
     << "  \"deterministic_across_threads\": "
     << (deterministic ? "true" : "false") << ",\n"
     << "  \"cold_iterations\": " << wc.cold_iters << ",\n"
     << "  \"warm_iterations\": " << wc.warm_iters << ",\n"
     << "  \"cold_evaluations\": " << wc.cold_evals << ",\n"
     << "  \"warm_evaluations\": " << wc.warm_evals << ",\n"
     << "  \"cold_noise_free_s\": " << wc.cold_nf_s << ",\n"
     << "  \"warm_noise_free_s\": " << wc.warm_nf_s << ",\n"
     << "  \"warm_cost_ratio\": " << wc.cost_ratio() << "\n"
     << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--apps" && i + 1 < argc) {
      g_apps = std::max(8, std::atoi(argv[++i]));
    }
  }

  const ScaleResult scale = CaseScale();
  const bool deterministic = CaseDeterminism();
  const WarmColdResult wc = CaseWarmVsCold();

  TablePrinter tp({"metric", "value"});
  tp.AddRow({"apps", TablePrinter::Num(g_apps, 0)});
  tp.AddRow({"warm lookup p50", TablePrinter::Num(scale.p50_us, 2) + " us"});
  tp.AddRow({"warm lookup p99", TablePrinter::Num(scale.p99_us, 2) + " us"});
  tp.AddRow({"retune throughput",
             TablePrinter::Num(scale.retune_per_s, 1) + "/s"});
  tp.AddRow({"evictions cap/ttl", TablePrinter::Num(scale.evict_cap, 0) +
                                      "/" +
                                      TablePrinter::Num(scale.evict_ttl, 0)});
  tp.AddRow({"warm starts", TablePrinter::Num(scale.warm_starts, 0)});
  tp.AddRow({"deterministic", deterministic ? "yes" : "no"});
  tp.AddRow({"cold iters -> warm iters",
             TablePrinter::Num(wc.cold_iters, 0) + " -> " +
                 TablePrinter::Num(wc.warm_iters, 0)});
  tp.AddRow({"warm/cold noise-free cost",
             TablePrinter::Num(wc.cost_ratio(), 3)});
  tp.Print(std::cout);

  WriteJson(out_path, scale, deterministic, wc);
  return 0;
}
