// Figure 20: tuning overhead (hours) for TPC-DS as the input size grows.
// LOCAT's curve is the flattest; we additionally report LOCAT's *online*
// mode, where one tuner instance adapts across the data sizes via the
// DAGP and only the first size pays the cold-start cost.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 20: tuning overhead vs input size, TPC-DS (x86, "
              "hours)");

  const std::vector<double> sizes = {100.0, 200.0, 300.0, 400.0, 500.0};
  const harness::WarmSequenceResult warm =
      harness::RunLocatWarmSequence("TPC-DS", "x86", sizes);

  TablePrinter tp({"datasize", "LOCAT (warm/online)", "LOCAT (cold)",
                   "Tuneful", "DAC", "GBO-RL", "QTune"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row = {
        bench::Num(sizes[i], 0) + " GB",
        bench::Num(warm.incremental_optimization_seconds[i] / 3600.0, 1)};
    for (const std::string& tuner :
         {std::string("LOCAT"), std::string("Tuneful"), std::string("DAC"),
          std::string("GBO-RL"), std::string("QTune")}) {
      harness::CellSpec spec;
      spec.tuner = tuner;
      spec.app = "TPC-DS";
      spec.cluster = "x86";
      spec.datasize_gb = sizes[i];
      row.push_back(
          bench::Num(bench::Runner().Run(spec).optimization_seconds / 3600.0,
                     1));
    }
    tp.AddRow(row);
  }
  tp.Print(std::cout);
  bench::Runner().Save();
  std::cout << "\nPaper: the SOTA overhead grows sharply with the data size "
               "while LOCAT's stays low; with the DAGP reusing knowledge "
               "across sizes (warm column), re-tuning after a data-size "
               "change costs only a handful of RQA runs.\n";
  return 0;
}
