// Linear-algebra kernel bench: scalar backend vs the CPU's best SIMD
// backend on the primitives under the GP/KPCA hot path.
//
// For each problem size n it times, on both backends:
//   gemm cold: one n x n matrix product on freshly faulted-in operands
//              (first touch, includes dispatch init on the very first
//              call);
//   gemm warm: the same product with operands resident in cache;
//   chol:      Cholesky factorization of an SPD n x n Gram + n I;
//   gram:      ARD squared-exponential Gram construction over an
//              n x kDim dataset (batched squared distances + the shared
//              polynomial exp) — the DAGP fit inner loop;
//   fit:       one end-to-end EI-MCMC surrogate fit (fast path).
// Wall times are minima over reps of an adaptively iterated loop
// (hand-rolled steady_clock timing, same idiom as micro_bo_hotpath;
// "cold" is the single first call and is reported as-is), written to
// BENCH_linalg.json.
//
// The two backends must agree bit-for-bit (checked on the Gram matrix
// every run; the bench aborts on any mismatch). The acceptance bar is
// >= 3x on gram and >= 2x on fit at n = 120, single-core — the bench
// pins the thread pool to one worker unless --threads says otherwise.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "math/cholesky.h"
#include "math/kern/kern.h"
#include "math/matrix.h"
#include "ml/ei_mcmc.h"
#include "ml/gp.h"
#include "ml/kernels.h"
#include "ml/sparse_gp.h"

namespace {

using namespace locat;
using Clock = std::chrono::steady_clock;

constexpr int kDim = 10;  // ~ IICP latent dims + data size
constexpr int kReps = 5;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Iterations so one timed loop does ~5e7 flop-equivalents: keeps every
/// measurement well above timer resolution without stretching the bench.
int Iters(double approx_flops) {
  return std::max(1, static_cast<int>(5e7 / std::max(1.0, approx_flops)));
}

/// Synthetic tuning-shaped dataset, same generator as micro_bo_hotpath.
void MakeDataset(int n, math::Matrix* x, math::Vector* y) {
  Rng rng(1234);
  *x = math::Matrix(static_cast<size_t>(n), kDim);
  *y = math::Vector(static_cast<size_t>(n));
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      const double v = rng.NextDouble();
      (*x)(i, j) = v;
      s += std::sin(4.0 * v + static_cast<double>(j)) / (1.0 + j);
    }
    (*y)[i] = 100.0 + 20.0 * s + 0.5 * rng.NextGaussian();
  }
}

math::Matrix RandomSquare(int n, uint64_t seed) {
  Rng rng(seed);
  math::Matrix m(static_cast<size_t>(n), static_cast<size_t>(n));
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

struct OpTimes {
  double gemm_cold_s = 0.0;
  double gemm_warm_s = 0.0;
  double chol_s = 0.0;
  double gram_s = 0.0;
  double fit_s = 0.0;
};

struct CaseResult {
  int n = 0;
  OpTimes scalar;
  OpTimes native;
  double gemm_speedup() const { return scalar.gemm_warm_s / native.gemm_warm_s; }
  double chol_speedup() const { return scalar.chol_s / native.chol_s; }
  double gram_speedup() const { return scalar.gram_s / native.gram_s; }
  double fit_speedup() const { return scalar.fit_s / native.fit_s; }
};

/// Times all ops for one size under the currently dispatched backend.
/// `gram_out` receives the Gram matrix for the cross-backend bit check.
OpTimes RunBackend(int n, math::Matrix* gram_out) {
  OpTimes out;
  math::Matrix x;
  math::Vector y;
  MakeDataset(n, &x, &y);
  const ml::ArdSquaredExponentialKernel kernel(
      math::Vector(static_cast<size_t>(kDim), 0.5), 1.0);

  // GEMM, cold: freshly generated operands, first call after generation.
  {
    const math::Matrix a = RandomSquare(n, 42);
    const math::Matrix b = RandomSquare(n, 43);
    const auto t0 = Clock::now();
    const math::Matrix c = a * b;
    const auto t1 = Clock::now();
    if (!(c(0, 0) == c(0, 0))) std::abort();  // keep it observable
    out.gemm_cold_s = Seconds(t0, t1);
  }
  // GEMM, warm: same operands reused across an iterated loop.
  {
    const math::Matrix a = RandomSquare(n, 42);
    const math::Matrix b = RandomSquare(n, 43);
    const int iters = Iters(2.0 * n * n * n);
    double best = std::numeric_limits<double>::infinity();
    double sink = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      for (int it = 0; it < iters; ++it) {
        const math::Matrix c = a * b;
        sink += c(0, 0);
      }
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1) / iters);
    }
    if (!(sink == sink)) std::abort();
    out.gemm_warm_s = best;
  }
  // Cholesky of an SPD matrix (Gram + n I).
  {
    math::Matrix spd = kernel.GramMatrix(x);
    spd.AddToDiagonal(static_cast<double>(n));
    const int iters = Iters(n * n * n / 3.0);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      for (int it = 0; it < iters; ++it) {
        const auto chol = math::Cholesky::Factor(spd);
        if (!chol.ok()) std::abort();
      }
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1) / iters);
    }
    out.chol_s = best;
  }
  // Gram construction: batched weighted sqdist + vectorized exp.
  {
    const int iters = Iters(3.0 * n * n * kDim);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = Clock::now();
      for (int it = 0; it < iters; ++it) {
        *gram_out = kernel.GramMatrix(x);
      }
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1) / iters);
    }
    out.gram_s = best;
  }
  // End-to-end EI-MCMC surrogate fit (fast path, as the tuner runs it).
  {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      ml::EiMcmc::Options opts;
      opts.fast_path = true;
      ml::EiMcmc model(opts);
      Rng rng(7);
      const auto t0 = Clock::now();
      if (!model.Fit(x, y, &rng).ok()) std::abort();
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1));
    }
    out.fit_s = best;
  }
  return out;
}

CaseResult RunCase(int n) {
  CaseResult out;
  out.n = n;
  math::Matrix gram_scalar;
  math::Matrix gram_native;
  math::kern::SetBackend(math::kern::Backend::kScalar);
  out.scalar = RunBackend(n, &gram_scalar);
  math::kern::SetBackend(math::kern::BestBackend());
  out.native = RunBackend(n, &gram_native);
  // Determinism gate: the backends must agree on every Gram bit.
  for (size_t i = 0; i < gram_scalar.rows(); ++i) {
    for (size_t j = 0; j < gram_scalar.cols(); ++j) {
      if (std::memcmp(&gram_scalar(i, j), &gram_native(i, j), 8) != 0) {
        std::fprintf(stderr, "backend mismatch at n=%d (%zu,%zu)\n", n, i, j);
        std::abort();
      }
    }
  }
  return out;
}

// ------------------------------------------------------------------
// Incremental & sparse surrogate cases (rank-1 appends, inducing subsets)
// ------------------------------------------------------------------

constexpr int kAppendTail = 16;  // observations appended per timing run

struct IncTimes {
  double append_s = 0.0;      // one rank-1 AppendFit at history size ~n
  double refit_s = 0.0;       // full fixed-hyperparameter GP::Fit at n
  double sparse_fit_s = 0.0;  // subset selection + EI-MCMC fit on m points
};

struct IncCaseResult {
  int n = 0;
  int m = 0;  // inducing-subset size used by the sparse case
  IncTimes scalar;
  IncTimes native;
  double append_vs_refit() const { return native.append_s / native.refit_s; }
  double append_speedup() const { return scalar.append_s / native.append_s; }
  double sparse_fit_speedup() const {
    return scalar.sparse_fit_s / native.sparse_fit_s;
  }
};

/// Fits at n, then times kAppendTail successive AppendFits. Returns the
/// appended factor (lower triangle valid) via `factor_out` for the
/// cross-backend and update-vs-refit gates.
IncTimes RunIncBackend(int n, int m, const math::Matrix& x,
                       const math::Vector& y, const ml::GpHyperparams& hp,
                       math::Matrix* factor_out) {
  IncTimes out;
  const size_t un = static_cast<size_t>(n);
  math::Matrix x0(un, kDim);
  math::Vector y0(un);
  for (size_t i = 0; i < un; ++i) {
    x0.SetRow(i, x.Row(i));
    y0[i] = y[i];
  }

  // Full fixed-hyperparameter refit at n: the cost a non-incremental
  // surrogate pays per new observation once the MCMC is frozen.
  {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      ml::GaussianProcess gp;
      const auto t0 = Clock::now();
      if (!gp.Fit(x0, y0, hp).ok()) std::abort();
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1));
    }
    out.refit_s = best;
  }
  // Rank-1 appends: fit once, then absorb kAppendTail observations one at
  // a time. Per-append cost is the minimum over the tail (history size
  // stays within kAppendTail of n).
  {
    ml::GaussianProcess gp;
    if (!gp.Fit(x0, y0, hp).ok()) std::abort();
    double best = std::numeric_limits<double>::infinity();
    for (int k = 0; k < kAppendTail; ++k) {
      const size_t i = un + static_cast<size_t>(k);
      const auto t0 = Clock::now();
      if (!gp.AppendFit(x.Row(i), y[i]).ok()) std::abort();
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1));
    }
    out.append_s = best;
    if (gp.applied_jitter() != 0.0) std::abort();  // well-conditioned setup
    *factor_out = gp.factor();

    // Update-vs-refit equality gate: the appended factor must match a
    // from-scratch factorization of the full history to rounding.
    ml::GaussianProcess full;
    if (!full.Fit(x, y, hp).ok()) std::abort();
    const math::Matrix& ref = full.factor();
    for (size_t i = 0; i < ref.rows(); ++i) {
      for (size_t j = 0; j <= i; ++j) {
        const double tol = 1e-8 * std::max(1.0, std::abs(ref(i, j)));
        if (!(std::abs((*factor_out)(i, j) - ref(i, j)) <= tol)) {
          std::fprintf(stderr,
                       "append/refit factor mismatch at n=%d L(%zu,%zu)\n", n,
                       i, j);
          std::abort();
        }
      }
    }
  }
  // Sparse mode: greedy max-min subset selection (seeded at the incumbent)
  // plus an EI-MCMC fast-path fit on the m inducing points — the whole
  // cost of a sparse refit, timed end to end.
  {
    size_t seed = 0;
    for (size_t i = 1; i < un; ++i) {
      if (y0[i] < y0[seed]) seed = i;
    }
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      ml::EiMcmc::Options opts;
      opts.fast_path = true;
      ml::EiMcmc model(opts);
      Rng rng(7);
      const auto t0 = Clock::now();
      const std::vector<size_t> idx =
          ml::GreedyMaxMinSubset(x0, static_cast<size_t>(m), seed);
      math::Matrix xs(idx.size(), kDim);
      math::Vector ys(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        xs.SetRow(i, x0.Row(idx[i]));
        ys[i] = y0[idx[i]];
      }
      if (!model.Fit(xs, ys, &rng).ok()) std::abort();
      const auto t1 = Clock::now();
      best = std::min(best, Seconds(t0, t1));
    }
    out.sparse_fit_s = best;
  }
  return out;
}

IncCaseResult RunIncCase(int n, int m) {
  IncCaseResult out;
  out.n = n;
  out.m = m;
  math::Matrix x;
  math::Vector y;
  MakeDataset(n + kAppendTail, &x, &y);
  const ml::GpHyperparams hp = ml::GpHyperparams::Default(kDim);
  math::Matrix factor_scalar;
  math::Matrix factor_native;
  math::kern::SetBackend(math::kern::Backend::kScalar);
  out.scalar = RunIncBackend(n, m, x, y, hp, &factor_scalar);
  math::kern::SetBackend(math::kern::BestBackend());
  out.native = RunIncBackend(n, m, x, y, hp, &factor_native);
  // Determinism gate: the appended factor must agree bit-for-bit across
  // backends (lower triangle; the strict upper part is unspecified).
  for (size_t i = 0; i < factor_scalar.rows(); ++i) {
    for (size_t j = 0; j <= i; ++j) {
      if (std::memcmp(&factor_scalar(i, j), &factor_native(i, j), 8) != 0) {
        std::fprintf(stderr, "append backend mismatch at n=%d (%zu,%zu)\n", n,
                     i, j);
        std::abort();
      }
    }
  }
  return out;
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases,
               const std::vector<IncCaseResult>& inc_cases) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(6);
  os << "{\n"
     << "  \"benchmark\": \"linalg\",\n"
     << "  \"dim\": " << kDim << ",\n"
     << "  \"native_backend\": \""
     << math::kern::BackendName(math::kern::BestBackend()) << "\",\n"
     << "  \"threads\": " << common::ThreadPool::Global()->num_threads()
     << ",\n"
     << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"n\": " << c.n
       << ", \"gemm_cold_scalar_s\": " << c.scalar.gemm_cold_s
       << ", \"gemm_cold_native_s\": " << c.native.gemm_cold_s
       << ", \"gemm_warm_scalar_s\": " << c.scalar.gemm_warm_s
       << ", \"gemm_warm_native_s\": " << c.native.gemm_warm_s
       << ", \"chol_scalar_s\": " << c.scalar.chol_s
       << ", \"chol_native_s\": " << c.native.chol_s
       << ", \"gram_scalar_s\": " << c.scalar.gram_s
       << ", \"gram_native_s\": " << c.native.gram_s
       << ", \"fit_scalar_s\": " << c.scalar.fit_s
       << ", \"fit_native_s\": " << c.native.fit_s
       << ", \"gemm_speedup\": " << c.gemm_speedup()
       << ", \"chol_speedup\": " << c.chol_speedup()
       << ", \"gram_speedup\": " << c.gram_speedup()
       << ", \"fit_speedup\": " << c.fit_speedup() << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"incremental_cases\": [\n";
  for (size_t i = 0; i < inc_cases.size(); ++i) {
    const IncCaseResult& c = inc_cases[i];
    os << "    {\"n\": " << c.n << ", \"m\": " << c.m
       << ", \"append_scalar_s\": " << c.scalar.append_s
       << ", \"append_native_s\": " << c.native.append_s
       << ", \"refit_scalar_s\": " << c.scalar.refit_s
       << ", \"refit_native_s\": " << c.native.refit_s
       << ", \"sparse_fit_scalar_s\": " << c.scalar.sparse_fit_s
       << ", \"sparse_fit_native_s\": " << c.native.sparse_fit_s
       << ", \"append_vs_refit\": " << c.append_vs_refit()
       << ", \"append_speedup\": " << c.append_speedup()
       << ", \"sparse_fit_speedup\": " << c.sparse_fit_speedup() << "}"
       << (i + 1 < inc_cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_linalg.json";
  int threads = 1;  // single-core by default: the acceptance bar
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  common::ThreadPool::SetGlobalThreads(threads);

  std::printf("native backend: %s\n",
              math::kern::BackendName(math::kern::BestBackend()));
  std::vector<CaseResult> cases;
  TablePrinter tp({"n", "gemm warm", "chol", "gram", "ei-mcmc fit"});
  for (int n : {20, 60, 120, 240}) {
    const CaseResult c = RunCase(n);
    cases.push_back(c);
    tp.AddRow({std::to_string(c.n),
               TablePrinter::Num(c.gemm_speedup(), 2) + "x",
               TablePrinter::Num(c.chol_speedup(), 2) + "x",
               TablePrinter::Num(c.gram_speedup(), 2) + "x",
               TablePrinter::Num(c.fit_speedup(), 2) + "x"});
  }
  tp.Print(std::cout);

  // Incremental & sparse surrogate cases. m = threshold - threshold/6 with
  // the default switch threshold 240, matching Dagp's sparse default.
  std::vector<IncCaseResult> inc_cases;
  TablePrinter itp({"n", "m", "append", "refit", "append/refit", "sparse fit"});
  for (int n : {240, 480, 960}) {
    const IncCaseResult c = RunIncCase(n, 200);
    inc_cases.push_back(c);
    itp.AddRow({std::to_string(c.n), std::to_string(c.m),
                TablePrinter::Num(c.native.append_s * 1e3, 3) + "ms",
                TablePrinter::Num(c.native.refit_s * 1e3, 3) + "ms",
                TablePrinter::Num(c.append_vs_refit(), 3),
                TablePrinter::Num(c.native.sparse_fit_s * 1e3, 3) + "ms"});
  }
  itp.Print(std::cout);
  // Acceptance gate: a rank-1 append at n=240 must cost at most 15% of a
  // full fixed-hyperparameter refit at the same size.
  if (inc_cases.front().append_vs_refit() > 0.15) {
    std::fprintf(stderr, "append/refit ratio %.3f exceeds 0.15 at n=240\n",
                 inc_cases.front().append_vs_refit());
    return 1;
  }

  WriteJson(out_path, cases, inc_cases);
  return 0;
}
