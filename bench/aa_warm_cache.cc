// Populates the shared result cache for every experiment the other bench
// binaries read: the full (tuner x app x cluster x data size) comparison
// grid plus the Section 5.10 composites. Named so that a glob over
// build/bench/* runs it first; later binaries then hit the cache.
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  std::printf("Populating the LOCAT experiment cache (one-time; all other\n"
              "bench binaries reuse it). This tunes 5 applications x 5 data\n"
              "sizes x 2 clusters with LOCAT and four baselines...\n");
  std::fflush(stdout);

  std::vector<locat::harness::CellSpec> specs;
  for (const char* cluster : {"x86", "arm"}) {
    for (auto& spec : locat::bench::ComparisonGrid(cluster)) {
      specs.push_back(spec);
    }
  }
  // Section 5.10 composites on TPC-DS, 500 GB, x86.
  for (const char* base : {"Tuneful", "DAC", "GBO-RL", "QTune"}) {
    for (const char* mode : {"", "+QCSA", "+IICP", "+QIT"}) {
      locat::harness::CellSpec spec;
      spec.tuner = std::string(base) + mode;
      spec.app = "TPC-DS";
      spec.cluster = "x86";
      spec.datasize_gb = 500.0;
      specs.push_back(spec);
    }
  }
  // Figure 15: LOCAT with all parameters (IICP off) on TPC-DS.
  for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    locat::harness::CellSpec spec;
    spec.tuner = "LOCAT-AP";
    spec.app = "TPC-DS";
    spec.cluster = "x86";
    spec.datasize_gb = ds;
    specs.push_back(spec);
  }

  int done = 0;
  for (const auto& spec : specs) {
    locat::bench::Runner().Run(spec);
    ++done;
    if (done % 25 == 0) {
      locat::bench::Runner().Save();
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      std::printf("  ...%d / %zu cells (%.0f s elapsed)\n", done,
                  specs.size(), secs);
      std::fflush(stdout);
    }
  }
  locat::bench::Runner().Save();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("Cache ready: %zu cells in %.0f s.\n", specs.size(), secs);
  return 0;
}
