// Observability overhead micro benchmarks.
//
// The locat::obs contract is "zero cost when disabled, <2% when enabled":
// a null Tracer*/TunerObserver* must not allocate or read a clock, and a
// fully wired context must stay in the noise next to the simulator work
// it measures. The BM_SimApp_* pair is the headline number: the full
// simulated app run with tracing off vs on.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

// Disabled-path floor: a scope guarded by a null tracer.
void BM_ScopedSpan_Disabled(benchmark::State& state) {
  obs::Tracer* tracer = nullptr;
  for (auto _ : state) {
    obs::ScopedSpan span(tracer, "bench/span", "bench");
    span.Arg("n", 1.0);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpan_Disabled);

void BM_ScopedSpan_Enabled(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "bench/span", "bench");
    span.Arg("n", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  state.counters["events"] = static_cast<double>(tracer.event_count());
}
BENCHMARK(BM_ScopedSpan_Enabled);

void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram(
      "bench_seconds", "", {1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    hist->Observe(v);
    v += 0.7;
    if (v > 2000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramObserve);

void BM_JsonlIterationEvent(benchmark::State& state) {
  std::ostringstream os;
  obs::JsonlObserver observer(&os);
  obs::BoIterationEvent ev;
  ev.tuner = "LOCAT";
  ev.phase = "reduced";
  ev.datasize_gb = 300.0;
  ev.eval_seconds = 1234.5;
  for (auto _ : state) {
    ev.iteration++;
    observer.OnIteration(ev);
  }
  benchmark::DoNotOptimize(os.str().size());
}
BENCHMARK(BM_JsonlIterationEvent);

// Absolute cost of the simulated-time trace lane: one full TPC-H app run
// emits ~100 lane events (~tens of µs). Against the *analytical*
// simulator this ratio is large — the analytical run replaces minutes of
// real Spark execution with microseconds of arithmetic — so this pair
// reports the absolute per-app emission cost, not the contract ratio.
void RunSimApp(benchmark::State& state, bool traced) {
  const auto app = workloads::TpcH();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 7);
  sparksim::ConfigSpace space(sim.cluster());
  const auto conf = space.Repair(space.DefaultConf());
  obs::Tracer tracer;
  if (traced) sim.set_tracer(&tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunApp(app, conf, 300.0).total_seconds);
    if (traced && tracer.event_count() > 500000) {
      state.PauseTiming();
      tracer.Clear();
      state.ResumeTiming();
    }
  }
}
void BM_SimApp_Untraced(benchmark::State& state) { RunSimApp(state, false); }
void BM_SimApp_Traced(benchmark::State& state) { RunSimApp(state, true); }
BENCHMARK(BM_SimApp_Untraced);
BENCHMARK(BM_SimApp_Traced);

// Headline pair: a small LOCAT cold-start pass (the wall-clock cost is
// dominated by DAGP/EI-MCMC model fits, as a real deployment's is by
// Spark runs) with observability fully off vs fully on — tracer, metrics,
// JSONL telemetry, and the simulator lane. The contract is < 2% overhead
// enabled; the per-evaluation emission cost is tens of µs against
// hundreds of ms of model fitting, so the pair should be within noise.
void RunTunePass(benchmark::State& state, bool observed) {
  core::LocatTuner::Options opts;
  opts.n_qcsa = 8;
  opts.n_iicp = 8;
  opts.lhs_init = 2;
  opts.min_iterations = 4;
  opts.max_iterations = 6;
  opts.candidates = 200;
  for (auto _ : state) {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 42);
    core::TuningSession session(&sim, workloads::HiBenchAggregation());
    core::LocatTuner tuner(opts);
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    std::ostringstream telemetry;
    obs::JsonlObserver observer(&telemetry);
    if (observed) {
      sim.set_tracer(&tracer);
      obs::ObsContext ctx;
      ctx.tracer = &tracer;
      ctx.metrics = &metrics;
      ctx.observer = &observer;
      session.SetObservability(ctx);
      tuner.SetObservability(ctx);
    }
    benchmark::DoNotOptimize(tuner.Tune(&session, 150.0).evaluations);
  }
}
void BM_TunePass_Unobserved(benchmark::State& state) {
  RunTunePass(state, false);
}
void BM_TunePass_Observed(benchmark::State& state) {
  RunTunePass(state, true);
}
BENCHMARK(BM_TunePass_Unobserved)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TunePass_Observed)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
