// Observability overhead micro benchmarks.
//
// The locat::obs contract is "zero cost when disabled, <2% when enabled":
// a null Tracer*/TunerObserver* must not allocate or read a clock, and a
// fully wired context must stay in the noise next to the simulator work
// it measures. The BM_SimApp_* pair is the headline number: the full
// simulated app run with tracing off vs on.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "obs/flight_recorder.h"
#include "obs/labels.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

// Disabled-path floor: a scope guarded by a null tracer.
void BM_ScopedSpan_Disabled(benchmark::State& state) {
  obs::Tracer* tracer = nullptr;
  for (auto _ : state) {
    obs::ScopedSpan span(tracer, "bench/span", "bench");
    span.Arg("n", 1.0);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ScopedSpan_Disabled);

void BM_ScopedSpan_Enabled(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "bench/span", "bench");
    span.Arg("n", 1.0);
    benchmark::DoNotOptimize(&span);
  }
  state.counters["events"] = static_cast<double>(tracer.event_count());
}
BENCHMARK(BM_ScopedSpan_Enabled);

void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram(
      "bench_seconds", "", {1.0, 10.0, 100.0, 1000.0});
  double v = 0.0;
  for (auto _ : state) {
    hist->Observe(v);
    v += 0.7;
    if (v > 2000.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramObserve);

// Labeled-family lookup: the map+mutex path taken when a caller resolves
// a child by LabelSet every time. Wired code should not do this on a hot
// path — it resolves once and keeps the Counter* (next benchmark).
void BM_CounterFamily_WithLabels(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::CounterFamily* family =
      registry.GetCounterFamily("bench_family_total");
  const obs::LabelSet labels({{"app", "TPC-H"}, {"status", "ok"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(family->WithLabels(labels));
  }
}
BENCHMARK(BM_CounterFamily_WithLabels);

// Cached-child path: resolve once at wiring time, then one relaxed
// fetch_add per event. This must match BM_CounterIncrement.
void BM_CounterFamily_CachedChild(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::CounterFamily* family =
      registry.GetCounterFamily("bench_family_total");
  obs::Counter* child =
      family->WithLabels(obs::LabelSet({{"app", "TPC-H"}, {"status", "ok"}}));
  for (auto _ : state) {
    child->Increment();
  }
  benchmark::DoNotOptimize(child->value());
}
BENCHMARK(BM_CounterFamily_CachedChild);

// Disabled-path floor for structured logging: one relaxed level load,
// no clock read, no allocation. Fields are built only after the check.
void BM_Log_Disabled(benchmark::State& state) {
  obs::Log log;  // default level kOff
  for (auto _ : state) {
    if (log.Enabled(obs::LogLevel::kInfo)) {
      log.Info("bench", "never emitted", {{"n", "1"}});
    }
    benchmark::DoNotOptimize(&log);
  }
}
BENCHMARK(BM_Log_Disabled);

void BM_Log_Enabled_Jsonl(benchmark::State& state) {
  std::ostringstream os;
  obs::Log log;
  log.SetLevel(obs::LogLevel::kInfo);
  log.SetJsonlSink(&os);
  for (auto _ : state) {
    log.Info("bench", "structured record", {{"n", "1"}, {"phase", "bench"}});
    if (os.tellp() > (1 << 22)) {
      state.PauseTiming();
      os.str("");
      state.ResumeTiming();
    }
  }
  state.counters["written"] = static_cast<double>(log.written());
}
BENCHMARK(BM_Log_Enabled_Jsonl);

// Rate-limited steady state: after the burst drains, each call is the
// token-bucket check plus a dropped-counter bump — no formatting, no IO.
void BM_Log_RateLimited(benchmark::State& state) {
  std::ostringstream os;
  obs::Log log;
  log.SetLevel(obs::LogLevel::kInfo);
  log.SetJsonlSink(&os);
  log.SetRateLimit(1.0, 1);
  log.Info("bench", "drain the burst", {});
  for (auto _ : state) {
    log.Info("bench", "mostly dropped", {{"n", "1"}});
  }
  state.counters["dropped"] = static_cast<double>(log.dropped());
}
BENCHMARK(BM_Log_RateLimited);

// Flight-recorder append: wait-free seqlock slot claim + fixed-size
// copies. This sits on the simulator fault path, so it must stay flat.
void BM_FlightRecord(benchmark::State& state) {
  obs::FlightRecorder flight(256);
  double v = 0.0;
  for (auto _ : state) {
    flight.Record("bench", "info", "bench", "ring append payload", v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(flight.total_recorded());
}
BENCHMARK(BM_FlightRecord);

void BM_JsonlIterationEvent(benchmark::State& state) {
  std::ostringstream os;
  obs::JsonlObserver observer(&os);
  obs::BoIterationEvent ev;
  ev.tuner = "LOCAT";
  ev.phase = "reduced";
  ev.datasize_gb = 300.0;
  ev.eval_seconds = 1234.5;
  for (auto _ : state) {
    ev.iteration++;
    observer.OnIteration(ev);
  }
  benchmark::DoNotOptimize(os.str().size());
}
BENCHMARK(BM_JsonlIterationEvent);

// Absolute cost of the simulated-time trace lane: one full TPC-H app run
// emits ~100 lane events (~tens of µs). Against the *analytical*
// simulator this ratio is large — the analytical run replaces minutes of
// real Spark execution with microseconds of arithmetic — so this pair
// reports the absolute per-app emission cost, not the contract ratio.
void RunSimApp(benchmark::State& state, bool traced) {
  const auto app = workloads::TpcH();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 7);
  sparksim::ConfigSpace space(sim.cluster());
  const auto conf = space.Repair(space.DefaultConf());
  obs::Tracer tracer;
  if (traced) sim.set_tracer(&tracer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunApp(app, conf, 300.0).total_seconds);
    if (traced && tracer.event_count() > 500000) {
      state.PauseTiming();
      tracer.Clear();
      state.ResumeTiming();
    }
  }
}
void BM_SimApp_Untraced(benchmark::State& state) { RunSimApp(state, false); }
void BM_SimApp_Traced(benchmark::State& state) { RunSimApp(state, true); }
BENCHMARK(BM_SimApp_Untraced);
BENCHMARK(BM_SimApp_Traced);

// Headline pair: a small LOCAT cold-start pass (the wall-clock cost is
// dominated by DAGP/EI-MCMC model fits, as a real deployment's is by
// Spark runs) with observability fully off vs fully on — tracer, metrics,
// JSONL telemetry, and the simulator lane. The contract is < 2% overhead
// enabled against a real deployment, where each evaluation is a
// minutes-long Spark run; here the analytical simulator compresses an
// evaluation to sub-ms, so the demo-scale ratio overstates production
// overhead. The number to watch is the per-evaluation emission cost
// (delta / evaluations), which must stay in the tens of µs.
void RunTunePass(benchmark::State& state, bool observed) {
  core::LocatTuner::Options opts;
  opts.n_qcsa = 8;
  opts.n_iicp = 8;
  opts.lhs_init = 2;
  opts.min_iterations = 4;
  opts.max_iterations = 6;
  opts.candidates = 200;
  for (auto _ : state) {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 42);
    core::TuningSession session(&sim, workloads::HiBenchAggregation());
    core::LocatTuner tuner(opts);
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    std::ostringstream telemetry;
    obs::JsonlObserver observer(&telemetry);
    if (observed) {
      sim.set_tracer(&tracer);
      obs::ObsContext ctx;
      ctx.tracer = &tracer;
      ctx.metrics = &metrics;
      ctx.observer = &observer;
      session.SetObservability(ctx);
      tuner.SetObservability(ctx);
    }
    benchmark::DoNotOptimize(tuner.Tune(&session, 150.0).evaluations);
  }
}
void BM_TunePass_Unobserved(benchmark::State& state) {
  RunTunePass(state, false);
}
void BM_TunePass_Observed(benchmark::State& state) {
  RunTunePass(state, true);
}
BENCHMARK(BM_TunePass_Unobserved)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TunePass_Observed)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
