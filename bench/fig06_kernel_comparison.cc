// Figure 6: choosing the CPE kernel. For each candidate kernel the paper
// configures the application with the parameters "selected by KPCA" and
// takes the standard deviation of the resulting execution times: a larger
// SD means the kernel's components capture more performance-relevant
// structure. The Gaussian kernel wins.
//
// Concretely: fit KPCA per kernel on 20 CPS-filtered samples, pick the 12
// candidate configurations (out of 60 random ones) that spread widest
// along the first component, run them, report the SD of runtimes.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "math/stats.h"
#include "ml/kernels.h"
#include "ml/kpca.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

double KernelSd(const std::string& app_name, const ml::Kernel& kernel) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1600);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(1601);

  // Sample collection + CPS (shared across kernels via fixed seeds).
  const int n = 20;
  math::Matrix confs(n, sparksim::kNumParams);
  std::vector<double> times(n);
  for (int i = 0; i < n; ++i) {
    const auto conf = space.RandomValid(&rng);
    confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
    times[static_cast<size_t>(i)] = sim.RunApp(app, conf, 100.0).total_seconds;
  }
  const auto iicp = core::Iicp::Run(confs, times);
  if (!iicp.ok()) return 0.0;
  const auto& dims = iicp->selected_params();

  // KPCA with this kernel on the CPS-selected dimensions.
  math::Matrix reduced(n, dims.size());
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    for (size_t j = 0; j < dims.size(); ++j) {
      reduced(i, j) = confs(i, static_cast<size_t>(dims[j]));
    }
  }
  ml::Kpca kpca;
  if (!kpca.Fit(reduced, &kernel).ok()) return 0.0;

  // Spread 60 random candidates along the first extracted component, keep
  // the 12 most extreme, and measure the runtime spread they induce.
  Rng crng(1602);
  std::vector<std::pair<double, sparksim::SparkConf>> scored;
  for (int c = 0; c < 60; ++c) {
    const auto conf = space.RandomValid(&crng);
    const math::Vector unit = space.ToUnit(conf);
    math::Vector sel(dims.size());
    for (size_t j = 0; j < dims.size(); ++j) {
      sel[j] = unit[static_cast<size_t>(dims[j])];
    }
    scored.push_back({kpca.Project(sel)[0], conf});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<double> runtimes;
  for (int k = 0; k < 6; ++k) {
    runtimes.push_back(
        sim.RunApp(app, scored[static_cast<size_t>(k)].second, 100.0)
            .total_seconds);
    runtimes.push_back(
        sim.RunApp(app, scored[scored.size() - 1 - static_cast<size_t>(k)].second,
                   100.0)
            .total_seconds);
  }
  return math::StdDev(runtimes);
}

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Figure 6: KPCA kernel comparison — SD of execution times "
              "induced by each kernel's leading component (100 GB, x86)");

  ml::GaussianKernel gaussian(2.0);
  ml::PerceptronKernel perceptron;
  ml::PolynomialKernel polynomial(2, 1.0);

  TablePrinter tp({"application", "Gaussian SD (s)", "perceptron SD (s)",
                   "polynomial SD (s)", "largest"});
  for (const char* app_name : {"TPC-DS", "TPC-H"}) {
    const double g = KernelSd(app_name, gaussian);
    const double p = KernelSd(app_name, perceptron);
    const double q = KernelSd(app_name, polynomial);
    const char* winner =
        g >= p && g >= q ? "Gaussian" : (p >= q ? "perceptron" : "polynomial");
    tp.AddRow({app_name, bench::Num(g, 1), bench::Num(p, 1), bench::Num(q, 1),
               winner});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: the Gaussian kernel yields the largest SD for both "
               "TPC-DS and TPC-H, so CPE uses it.\n";
  return 0;
}
