// Ablation (Section 3.3.2): the paper uses *kernel* PCA for CPE because
// "PCA can not extract the non-linear information from the original
// configuration space". We compare linear PCA against Gaussian-KPCA as
// the extraction step: both are fitted on the same CPS-reduced samples,
// and we measure (a) how much runtime spread their leading component
// induces (the Figure 6 criterion) and (b) how many components each needs
// for 90% variance.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "math/stats.h"
#include "ml/kernels.h"
#include "ml/kpca.h"
#include "ml/pca.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Ablation: linear PCA vs Gaussian-KPCA as the CPE extractor "
              "(100 GB, x86)");

  TablePrinter tp({"application", "extractor", "components (90% var)",
                   "runtime SD along comp. 1 (s)"});
  for (const char* app_name : {"TPC-DS", "TPC-H"}) {
    const auto app = harness::MakeApp(app_name);
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 5100);
    sparksim::ConfigSpace space(sim.cluster());
    Rng rng(5101);

    // Shared sample collection + CPS.
    const int n = 20;
    math::Matrix confs(n, sparksim::kNumParams);
    std::vector<double> times(n);
    for (int i = 0; i < n; ++i) {
      const auto conf = space.RandomValid(&rng);
      confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
      times[static_cast<size_t>(i)] =
          sim.RunApp(app, conf, 100.0).total_seconds;
    }
    const auto iicp = core::Iicp::Run(confs, times);
    if (!iicp.ok()) continue;
    const auto& dims = iicp->selected_params();
    math::Matrix reduced(n, dims.size());
    for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
      for (size_t j = 0; j < dims.size(); ++j) {
        reduced(i, j) = confs(i, static_cast<size_t>(dims[j]));
      }
    }

    ml::GaussianKernel kernel(2.0);
    ml::Kpca kpca;
    ml::Kpca::Options kopts;
    kopts.variance_to_retain = 0.90;
    ml::Pca pca;
    ml::Pca::Options popts;
    popts.variance_to_retain = 0.90;
    if (!kpca.Fit(reduced, &kernel, kopts).ok()) continue;
    if (!pca.Fit(reduced, popts).ok()) continue;

    // Runtime SD induced by the leading component of each extractor
    // (12 extreme candidates out of 60, as in the Figure 6 bench).
    auto sd_along = [&](auto&& project) {
      Rng crng(5102);
      std::vector<std::pair<double, sparksim::SparkConf>> scored;
      for (int c = 0; c < 60; ++c) {
        const auto conf = space.RandomValid(&crng);
        const math::Vector unit = space.ToUnit(conf);
        math::Vector sel(dims.size());
        for (size_t j = 0; j < dims.size(); ++j) {
          sel[j] = unit[static_cast<size_t>(dims[j])];
        }
        scored.push_back({project(sel), conf});
      }
      std::sort(scored.begin(), scored.end(), [](const auto& a,
                                                 const auto& b) {
        return a.first < b.first;
      });
      std::vector<double> runtimes;
      for (int k = 0; k < 6; ++k) {
        runtimes.push_back(
            sim.RunApp(app, scored[static_cast<size_t>(k)].second, 100.0)
                .total_seconds);
        runtimes.push_back(sim.RunApp(app,
                                      scored[scored.size() - 1 -
                                             static_cast<size_t>(k)]
                                          .second,
                                      100.0)
                               .total_seconds);
      }
      return math::StdDev(runtimes);
    };
    const double kpca_sd =
        sd_along([&](const math::Vector& v) { return kpca.Project(v)[0]; });
    const double pca_sd =
        sd_along([&](const math::Vector& v) { return pca.Project(v)[0]; });

    tp.AddRow({app_name, "Gaussian KPCA", std::to_string(kpca.num_components()),
               bench::Num(kpca_sd, 1)});
    tp.AddRow({app_name, "linear PCA", std::to_string(pca.num_components()),
               bench::Num(pca_sd, 1)});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: KPCA's kernelized components capture the "
               "non-linear parameter interactions that linear PCA misses, "
               "which is why CPE uses KPCA (with the Gaussian kernel per "
               "Figure 6).\n";
  return 0;
}
