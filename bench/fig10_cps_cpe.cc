// Figure 10: number of important parameters selected by CPS and further
// extracted by CPE for the five benchmark applications. The paper reports
// CPS keeps ~2/3 of the 38 parameters and CPE extracts ~1/3 of those.
#include <iostream>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 10: parameters selected by CPS / extracted by CPE "
              "(N_IICP = 20 samples, 100 GB, x86)");

  TablePrinter tp({"application", "CPS-selected", "CPE components",
                   "explained variance"});
  for (const std::string& app_name : bench::AppNames()) {
    const auto app = harness::MakeApp(app_name);
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1400);
    sparksim::ConfigSpace space(sim.cluster());
    Rng rng(1401);
    const int n = 20;
    math::Matrix confs(n, sparksim::kNumParams);
    std::vector<double> times(n);
    for (int i = 0; i < n; ++i) {
      const auto conf = space.RandomValid(&rng);
      confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
      times[static_cast<size_t>(i)] =
          sim.RunApp(app, conf, 100.0).total_seconds;
    }
    const auto iicp = core::Iicp::Run(confs, times);
    if (!iicp.ok()) {
      std::cerr << "IICP failed for " << app_name << "\n";
      continue;
    }
    tp.AddRow({app_name, std::to_string(iicp->selected_params().size()),
               std::to_string(iicp->latent_dim()),
               bench::Num(iicp->kpca().explained_variance_ratio(), 2)});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: CPS selects ~25 of 38; CPE extracts ~8 new "
               "parameters from them.\n";
  return 0;
}
