// Batch-engine grid-sweep bench: the structure-of-arrays RunAppBatch
// engine vs the sequential reference over a large (conf x query) grid.
//
// Three cases, timed with hand-rolled steady_clock minima over kReps
// repetitions and written to BENCH_simgrid.json:
//   grid_cold:   TPC-DS (104 queries) x kConfs configurations, noise off,
//           cache off, 8 threads — the million-cell sweep the batch
//           engine exists for. Acceptance bar: >= 1.8x over the
//           sequential engine, with every AppRunResult checked
//           bit-identical between engines before timing counts. The
//           ratio scales with the host: the batch engine gets its
//           speedup from SIMD passes plus one thread per conf block,
//           while the sequential reference is single-threaded, so a
//           multi-core machine lands at (cores x ~4); the bar is set
//           for the worst case of a single-core CI container where
//           only the SIMD/fusion win (~2.4x at 8 oversubscribed
//           threads, ~3.8x at 1) survives;
//   grid_noisy:  same grid with the default noise sigma (informational —
//           shows the pre-drawn noise stream costs the batch engine
//           nothing extra);
//   grid_cached: same grid with a fresh eval cache per pass
//           (informational — the AoS resolution path).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "sparksim/batch_engine.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;
constexpr int kConfs = 1000;  // configurations per sweep
constexpr double kDatasizeGb = 600.0;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<sparksim::SparkConf> MakeConfs(const sparksim::ConfigSpace& space,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<sparksim::SparkConf> confs;
  confs.reserve(kConfs);
  for (int i = 0; i < kConfs; ++i) confs.push_back(space.RandomValid(&rng));
  return confs;
}

bool SameMetrics(const sparksim::QueryMetrics& a,
                 const sparksim::QueryMetrics& b) {
  return a.name == b.name && a.exec_seconds == b.exec_seconds &&
         a.gc_seconds == b.gc_seconds && a.scan_seconds == b.scan_seconds &&
         a.shuffle_seconds == b.shuffle_seconds &&
         a.shuffle_gb == b.shuffle_gb && a.spill_gb == b.spill_gb &&
         a.scan_tasks == b.scan_tasks && a.task_waves == b.task_waves &&
         a.oom == b.oom && a.oom_severity == b.oom_severity &&
         a.failed == b.failed && a.retries == b.retries;
}

bool SameResult(const sparksim::AppRunResult& a,
                const sparksim::AppRunResult& b) {
  if (a.total_seconds != b.total_seconds || a.gc_seconds != b.gc_seconds ||
      a.shuffle_gb != b.shuffle_gb || a.any_oom != b.any_oom ||
      a.failed != b.failed || a.failed_at_query != b.failed_at_query ||
      a.retries != b.retries || a.lost_executors != b.lost_executors ||
      a.fail_reason != b.fail_reason ||
      a.per_query.size() != b.per_query.size()) {
    return false;
  }
  for (size_t q = 0; q < a.per_query.size(); ++q) {
    if (!SameMetrics(a.per_query[q], b.per_query[q])) return false;
  }
  return true;
}

struct CaseResult {
  std::string name;
  double seq_s = std::numeric_limits<double>::infinity();
  double batch_s = std::numeric_limits<double>::infinity();
  double cells = 0.0;
  double speedup() const { return seq_s / batch_s; }
  double batch_lanes_per_s() const {
    return batch_s > 0.0 ? static_cast<double>(kConfs) / batch_s : 0.0;
  }
};

// One timed sweep under `engine`: a fresh simulator (same seed, so both
// engines see the same RNG state) evaluates the whole grid in one
// RunAppBatch call. `cache`, when non-null, is cleared by the caller
// between passes so every pass is cold.
std::vector<sparksim::AppRunResult> RunSweep(
    sparksim::SimEngine engine, const sparksim::SparkSqlApp& app,
    const sparksim::ClusterSpec& cluster, const sparksim::SimParams& params,
    const std::vector<int>& queries,
    const std::vector<sparksim::SparkConf>& confs, sparksim::EvalCache* cache,
    double* wall_s) {
  sparksim::SetSimEngine(engine);
  sparksim::ClusterSimulator sim(cluster, 5, params);
  if (cache != nullptr) sim.set_eval_cache(cache);
  const auto t0 = Clock::now();
  auto out = sim.RunAppBatch(app, queries, confs, kDatasizeGb);
  *wall_s = Seconds(t0, Clock::now());
  if (!out.ok()) {
    std::fprintf(stderr, "RunAppBatch failed: %s\n",
                 out.status().ToString().c_str());
    std::abort();
  }
  return std::move(out).value();
}

CaseResult RunCase(const std::string& name, double noise_sigma,
                   bool with_cache) {
  const auto app = workloads::TpcDs();
  const sparksim::ClusterSpec cluster = sparksim::X86Cluster();
  sparksim::ConfigSpace space(cluster);
  const auto confs = MakeConfs(space, 42);
  std::vector<int> queries(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < queries.size(); ++i) queries[i] = static_cast<int>(i);
  sparksim::SimParams params;
  params.noise_sigma = noise_sigma;

  CaseResult out;
  out.name = name;
  out.cells = static_cast<double>(confs.size()) *
              static_cast<double>(queries.size());
  for (int rep = 0; rep < kReps; ++rep) {
    double wall = 0.0;
    sparksim::EvalCache seq_cache;
    const auto seq = RunSweep(sparksim::SimEngine::kSeq, app, cluster, params,
                              queries, confs,
                              with_cache ? &seq_cache : nullptr, &wall);
    out.seq_s = std::min(out.seq_s, wall);
    sparksim::EvalCache batch_cache;
    const auto batch = RunSweep(sparksim::SimEngine::kBatch, app, cluster,
                                params, queries, confs,
                                with_cache ? &batch_cache : nullptr, &wall);
    out.batch_s = std::min(out.batch_s, wall);
    // The determinism contract is the bench's correctness gate: a fast
    // batch engine that drifts from the reference is a wrong answer, not
    // a speedup.
    if (seq.size() != batch.size()) {
      std::fprintf(stderr, "%s: result count diverged\n", name.c_str());
      std::abort();
    }
    for (size_t i = 0; i < seq.size(); ++i) {
      if (!SameResult(seq[i], batch[i])) {
        std::fprintf(stderr, "%s: conf %zu diverged between engines\n",
                     name.c_str(), i);
        std::abort();
      }
    }
  }
  sparksim::SetSimEngine(sparksim::SimEngine::kAuto);
  return out;
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(6);
  os << "{\n"
     << "  \"benchmark\": \"simgrid\",\n"
     << "  \"confs\": " << kConfs << ",\n"
     << "  \"datasize_gb\": " << kDatasizeGb << ",\n"
     << "  \"threads\": " << common::ThreadPool::Global()->num_threads()
     << ",\n"
     << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\""
       << ", \"cells\": " << c.cells
       << ", \"seq_s\": " << c.seq_s
       << ", \"batch_s\": " << c.batch_s
       << ", \"batch_lanes_per_s\": " << c.batch_lanes_per_s()
       << ", \"speedup\": " << c.speedup() << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_simgrid.json";
  common::ThreadPool::SetGlobalThreads(8);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      common::ThreadPool::SetGlobalThreads(std::atoi(argv[++i]));
    }
  }

  const std::vector<CaseResult> cases = {
      RunCase("grid_cold", 0.0, false),
      RunCase("grid_noisy", sparksim::SimParams().noise_sigma, false),
      RunCase("grid_cached", 0.0, true),
  };
  TablePrinter tp({"case", "seq (s)", "batch (s)", "lanes/s", "speedup"});
  for (const CaseResult& c : cases) {
    tp.AddRow({c.name, TablePrinter::Num(c.seq_s, 4),
               TablePrinter::Num(c.batch_s, 4),
               TablePrinter::Num(c.batch_lanes_per_s(), 0),
               TablePrinter::Num(c.speedup(), 2) + "x"});
  }
  tp.Print(std::cout);
  const double cold = cases[0].speedup();
  if (!(cold >= 1.8)) {
    std::fprintf(stderr,
                 "grid_cold speedup %.2fx below the 1.8x acceptance bar\n",
                 cold);
    return 1;
  }
  WriteJson(out_path, cases);
  return 0;
}
