// Figure 2 (motivation): time used by the four SOTA tuners to find the
// optimal configuration of TPC-DS as the input size grows. The paper
// reports >= 89 hours at 100 GB and strong growth with the data size.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 2: SOTA optimization time for TPC-DS vs input size "
              "(x86 cluster, hours)");

  TablePrinter tp({"datasize", "Tuneful", "DAC", "GBO-RL", "QTune"});
  for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    std::vector<std::string> row = {bench::Num(ds, 0) + " GB"};
    for (const std::string& tuner : harness::SotaTunerNames()) {
      harness::CellSpec spec;
      spec.tuner = tuner;
      spec.app = "TPC-DS";
      spec.cluster = "x86";
      spec.datasize_gb = ds;
      const auto result = bench::Runner().Run(spec);
      row.push_back(bench::Num(result.optimization_seconds / 3600.0, 1));
    }
    tp.AddRow(row);
  }
  tp.Print(std::cout);
  bench::Runner().Save();
  std::cout << "\nPaper: at 100 GB the cheapest approach (GBO-RL) already "
               "needs 89 h, and the cost grows sharply with the data size "
               "(GBO-RL at 500 GB: 402 h on the ARM cluster).\n";
  return 0;
}
