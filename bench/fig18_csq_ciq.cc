// Figure 18: execution time of TPC-DS split into configuration-sensitive
// (CSQ) and configuration-insensitive (CIQ) queries, per tuning approach
// and data size. The paper's point: performance improvements come almost
// entirely from the CSQ side, and LOCAT accelerates CSQs the most.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 18: CSQ vs CIQ execution time of tuned TPC-DS "
              "(x86 cluster, seconds)");

  TablePrinter tp({"datasize", "tuner", "CSQ (s)", "CIQ (s)", "total (s)"});
  for (double ds : {100.0, 300.0, 500.0}) {
    for (const std::string& tuner :
         {std::string("LOCAT"), std::string("Tuneful"), std::string("DAC"),
          std::string("GBO-RL"), std::string("QTune")}) {
      harness::CellSpec spec;
      spec.tuner = tuner;
      spec.app = "TPC-DS";
      spec.cluster = "x86";
      spec.datasize_gb = ds;
      const auto r = bench::Runner().Run(spec);
      tp.AddRow({bench::Num(ds, 0) + " GB", tuner, bench::Num(r.csq_seconds, 0),
                 bench::Num(r.ciq_seconds, 0),
                 bench::Num(r.best_app_seconds, 0)});
    }
  }
  tp.Print(std::cout);
  bench::Runner().Save();
  std::cout << "\nPaper: CIQ time is roughly approach-independent (they are "
               "insensitive by definition); LOCAT's advantage concentrates "
               "in the CSQ share, which dominates at larger inputs.\n";
  return 0;
}
