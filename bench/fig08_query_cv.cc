// Figure 8: configuration sensitivity (CV) of the 104 TPC-DS queries over
// N_QCSA = 30 runs with random configurations, plus the tertile split of
// equation (4). The paper finds 23 configuration-sensitive queries.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/bench_util.h"
#include "core/qcsa.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 8: CV of the 104 TPC-DS queries (30 random configs, "
              "100 GB, x86 cluster)");

  const auto app = workloads::TpcDs();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1001);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(2002);

  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  std::vector<double> mean_time(static_cast<size_t>(app.num_queries()), 0.0);
  for (int run = 0; run < 30; ++run) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
      mean_time[q] += result.per_query[q].exec_seconds / 30.0;
    }
  }
  const auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (!qcsa.ok()) {
    std::cerr << "QCSA failed: " << qcsa.status() << "\n";
    return 1;
  }

  std::vector<size_t> order(times.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return qcsa->cv[a] > qcsa->cv[b];
  });

  TablePrinter tp({"rank", "query", "CV", "mean time (s)", "class"});
  for (size_t r = 0; r < order.size(); ++r) {
    const size_t q = order[r];
    const bool csq = qcsa->cv[q] >= qcsa->threshold;
    if (r < 30 || csq || app.queries[q].name == "q04" ||
        app.queries[q].name == "q08") {
      tp.AddRow({std::to_string(r + 1), app.queries[q].name,
                 bench::Num(qcsa->cv[q]), bench::Num(mean_time[q], 1),
                 csq ? "CSQ" : "CIQ"});
    }
  }
  tp.Print(std::cout);

  std::cout << "\nCV range: [" << bench::Num(qcsa->min_cv) << ", "
            << bench::Num(qcsa->max_cv) << "], tertile threshold (eq. 4): "
            << bench::Num(qcsa->threshold) << "\n";
  std::cout << "CSQ count: " << qcsa->csq_indices.size() << " of "
            << app.num_queries() << "  (paper: 23 of 104)\n";
  std::cout << "CSQ set: {";
  for (size_t i = 0; i < qcsa->csq_indices.size(); ++i) {
    std::cout << (i ? ", " : "")
              << app.queries[static_cast<size_t>(qcsa->csq_indices[i])].name;
  }
  std::cout << "}\n";
  std::cout << "Paper's CSQ set: {q72, q29, q14b, q43, q41, q99, q57, q33, "
               "q14a, q69, q40, q64a, q50, q21, q70, q95, q54, q23a, q23b, "
               "q15, q58, q62, q20}\n";
  return 0;
}
