// Evaluation fast-path bench: the config-fingerprint eval cache vs plain
// re-simulation.
//
// Three cases, all timed with hand-rolled steady_clock minima over kReps
// repetitions and written to BENCH_eval_cache.json:
//   run_app_subset: one pass over distinct configurations, cold (no
//           cache) vs warm (every per-query evaluation served from a
//           pre-populated cache) — the memoization-speedup ceiling;
//   qcsa_phase: the ExperimentRunner grid pattern — several cells collect
//           the same QCSA sample set (same confs, same datasize,
//           different simulator seeds) with and without a shared cache.
//           Because noise lives outside the memoized computation, every
//           pass after the first hits. Acceptance bar: >= 3x;
//   tune_e2e: a small LOCAT tuning run, cache off vs on, with the
//           outputs checked bit-identical across thread counts 1/4/8.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;
using Clock = std::chrono::steady_clock;

constexpr int kReps = 3;
constexpr int kConfs = 20;       // distinct configurations per pass
constexpr int kGridPasses = 4;   // simulated "cells" sharing the cache

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::vector<sparksim::SparkConf> MakeConfs(const sparksim::ConfigSpace& space,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<sparksim::SparkConf> confs;
  confs.reserve(kConfs);
  for (int i = 0; i < kConfs; ++i) confs.push_back(space.RandomValid(&rng));
  return confs;
}

struct CaseResult {
  std::string name;
  double nocache_s = std::numeric_limits<double>::infinity();
  double cached_s = std::numeric_limits<double>::infinity();
  double hit_rate = 0.0;
  // Warm-side lookup counters split by cache level: L1 is the per-app
  // subset memo (LookupApp/InsertApp), L2 the per-query evaluation table.
  double l1_hits = 0.0;
  double l1_misses = 0.0;
  double l2_hits = 0.0;
  double l2_misses = 0.0;
  double speedup() const { return nocache_s / cached_s; }
  double l1_rate() const {
    const double n = l1_hits + l1_misses;
    return n == 0.0 ? 0.0 : l1_hits / n;
  }
  double l2_rate() const {
    const double n = l2_hits + l2_misses;
    return n == 0.0 ? 0.0 : l2_hits / n;
  }
};

// Turns a before/after stats snapshot of the timed (warm) section into the
// per-level counters and the combined hit rate.
void FillLevelStats(const sparksim::EvalCacheStats& before,
                    const sparksim::EvalCacheStats& after, CaseResult* out) {
  out->l1_hits = static_cast<double>(after.app_hits - before.app_hits);
  out->l1_misses = static_cast<double>(after.app_misses - before.app_misses);
  out->l2_hits = static_cast<double>(after.hits - before.hits);
  out->l2_misses = static_cast<double>(after.misses - before.misses);
  const double lookups =
      out->l1_hits + out->l1_misses + out->l2_hits + out->l2_misses;
  out->hit_rate =
      lookups == 0.0 ? 0.0 : (out->l1_hits + out->l2_hits) / lookups;
}

// Cold vs warm single pass: every (conf, query) evaluation of the warm
// pass is a cache hit, so this measures the memoization ceiling.
CaseResult CaseRunAppSubset() {
  const auto app = workloads::TpcH();
  const sparksim::ClusterSpec cluster = sparksim::ArmCluster();
  sparksim::ConfigSpace space(cluster);
  const auto confs = MakeConfs(space, 42);
  std::vector<int> all(static_cast<size_t>(app.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);

  CaseResult out;
  out.name = "run_app_subset";
  double sink = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      sparksim::ClusterSimulator sim(cluster, 5);
      const auto t0 = Clock::now();
      for (const auto& conf : confs) {
        sink += sim.RunAppSubset(app, all, conf, 100.0)->total_seconds;
      }
      out.nocache_s = std::min(out.nocache_s, Seconds(t0, Clock::now()));
    }
    {
      sparksim::EvalCache cache;
      sparksim::ClusterSimulator warmup(cluster, 5);
      warmup.set_eval_cache(&cache);
      for (const auto& conf : confs) {
        sink += warmup.RunAppSubset(app, all, conf, 100.0)->total_seconds;
      }
      sparksim::ClusterSimulator sim(cluster, 5);
      sim.set_eval_cache(&cache);
      const sparksim::EvalCacheStats before = cache.stats();
      const auto t0 = Clock::now();
      for (const auto& conf : confs) {
        sink += sim.RunAppSubset(app, all, conf, 100.0)->total_seconds;
      }
      out.cached_s = std::min(out.cached_s, Seconds(t0, Clock::now()));
      FillLevelStats(before, cache.stats(), &out);
    }
  }
  if (!(sink > 0.0)) std::abort();  // keep the loops observable
  return out;
}

// The grid pattern: kGridPasses cells each run the same QCSA sample
// collection (same confs and datasize, different simulator seeds). The
// first cell populates the shared cache at full price (untimed here — it
// costs what the cold side costs); the timed warm side is what every
// later cell pays. This is the >= 3x acceptance case.
CaseResult CaseQcsaPhase() {
  const auto app = workloads::TpcDs();
  const sparksim::ClusterSpec cluster = sparksim::X86Cluster();
  sparksim::ConfigSpace space(cluster);
  const auto confs = MakeConfs(space, 7);

  CaseResult out;
  out.name = "qcsa_phase";
  double sink = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      const auto t0 = Clock::now();
      for (int pass = 0; pass < kGridPasses; ++pass) {
        sparksim::ClusterSimulator sim(cluster,
                                       100 + static_cast<uint64_t>(pass));
        for (const auto& conf : confs) {
          sink += sim.RunApp(app, conf, 100.0).total_seconds;
        }
      }
      out.nocache_s = std::min(out.nocache_s, Seconds(t0, Clock::now()));
    }
    {
      sparksim::EvalCache cache;
      {
        // Cell 0 pays the model once and fills the cache; its noise draws
        // come from a seed none of the timed cells use.
        sparksim::ClusterSimulator populate(cluster, 99);
        populate.set_eval_cache(&cache);
        for (const auto& conf : confs) {
          sink += populate.RunApp(app, conf, 100.0).total_seconds;
        }
      }
      const sparksim::EvalCacheStats warm_before = cache.stats();
      const auto t0 = Clock::now();
      for (int pass = 0; pass < kGridPasses; ++pass) {
        sparksim::ClusterSimulator sim(cluster,
                                       100 + static_cast<uint64_t>(pass));
        sim.set_eval_cache(&cache);
        for (const auto& conf : confs) {
          sink += sim.RunApp(app, conf, 100.0).total_seconds;
        }
      }
      out.cached_s = std::min(out.cached_s, Seconds(t0, Clock::now()));
      FillLevelStats(warm_before, cache.stats(), &out);
    }
  }
  if (!(sink > 0.0)) std::abort();
  return out;
}

core::TuningResult TuneOnce(bool with_cache, double* wall_s,
                            sparksim::EvalCacheStats* stats_out) {
  sparksim::EvalCache cache;
  sparksim::ClusterSimulator sim(sparksim::ArmCluster(), 5);
  if (with_cache) sim.set_eval_cache(&cache);
  core::TuningSession session(&sim, workloads::TpcH());
  core::LocatTuner::Options opts;
  opts.seed = 3;
  opts.n_qcsa = 15;
  opts.n_iicp = 12;
  opts.min_iterations = 6;
  opts.max_iterations = 10;
  core::LocatTuner tuner(opts);
  const auto t0 = Clock::now();
  core::TuningResult result = tuner.Tune(&session, 100.0);
  *wall_s = Seconds(t0, Clock::now());
  if (with_cache && stats_out != nullptr) *stats_out = cache.stats();
  return result;
}

bool SameResult(const core::TuningResult& a, const core::TuningResult& b) {
  if (a.best_observed_seconds != b.best_observed_seconds) return false;
  if (a.optimization_seconds != b.optimization_seconds) return false;
  if (a.evaluations != b.evaluations) return false;
  for (int p = 0; p < sparksim::kNumParams; ++p) {
    if (a.best_conf.Get(static_cast<sparksim::ParamId>(p)) !=
        b.best_conf.Get(static_cast<sparksim::ParamId>(p))) {
      return false;
    }
  }
  return true;
}

// End-to-end tuning wall clock, cache off vs on, and the bit-identity
// guarantee checked across thread counts (the acceptance criterion).
CaseResult CaseTuneE2e() {
  CaseResult out;
  out.name = "tune_e2e";
  core::TuningResult reference;
  bool have_reference = false;
  sparksim::EvalCacheStats warm{};
  for (const int threads : {1, 4, 8}) {
    common::ThreadPool::SetGlobalThreads(threads);
    for (const bool with_cache : {false, true}) {
      double wall = 0.0;
      const core::TuningResult r =
          TuneOnce(with_cache, &wall, with_cache ? &warm : nullptr);
      if (!have_reference) {
        reference = r;
        have_reference = true;
      } else if (!SameResult(r, reference)) {
        std::fprintf(stderr,
                     "tune_e2e: results diverged (cache=%d threads=%d)\n",
                     with_cache ? 1 : 0, threads);
        std::abort();
      }
      if (with_cache) {
        out.cached_s = std::min(out.cached_s, wall);
      } else {
        out.nocache_s = std::min(out.nocache_s, wall);
      }
    }
  }
  common::ThreadPool::SetGlobalThreads(0);  // restore default
  // Each cached run starts from a fresh cache, so `warm` holds one full
  // tuning pass's counters (identical across thread counts by the
  // bit-identity guarantee just checked above).
  FillLevelStats(sparksim::EvalCacheStats{}, warm, &out);
  return out;
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(6);
  os << "{\n"
     << "  \"benchmark\": \"eval_cache\",\n"
     << "  \"confs\": " << kConfs << ",\n"
     << "  \"grid_passes\": " << kGridPasses << ",\n"
     << "  \"threads\": " << common::ThreadPool::Global()->num_threads()
     << ",\n"
     << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\""
       << ", \"nocache_s\": " << c.nocache_s
       << ", \"cached_s\": " << c.cached_s
       << ", \"hit_rate\": " << c.hit_rate
       << ", \"l1_hits\": " << c.l1_hits
       << ", \"l1_misses\": " << c.l1_misses
       << ", \"l1_hit_rate\": " << c.l1_rate()
       << ", \"l2_hits\": " << c.l2_hits
       << ", \"l2_misses\": " << c.l2_misses
       << ", \"l2_hit_rate\": " << c.l2_rate()
       << ", \"speedup\": " << c.speedup() << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_eval_cache.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      common::ThreadPool::SetGlobalThreads(std::atoi(argv[++i]));
    }
  }

  std::vector<CaseResult> cases = {CaseRunAppSubset(), CaseQcsaPhase(),
                                   CaseTuneE2e()};
  TablePrinter tp({"case", "nocache (s)", "cached (s)", "hit rate",
                   "L1 h/m", "L2 h/m", "speedup"});
  for (const CaseResult& c : cases) {
    tp.AddRow({c.name, TablePrinter::Num(c.nocache_s, 4),
               TablePrinter::Num(c.cached_s, 4),
               TablePrinter::Num(100.0 * c.hit_rate, 1) + "%",
               TablePrinter::Num(c.l1_hits, 0) + "/" +
                   TablePrinter::Num(c.l1_misses, 0),
               TablePrinter::Num(c.l2_hits, 0) + "/" +
                   TablePrinter::Num(c.l2_misses, 0),
               TablePrinter::Num(c.speedup(), 2) + "x"});
  }
  tp.Print(std::cout);
  WriteJson(out_path, cases);
  return 0;
}
