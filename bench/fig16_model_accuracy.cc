// Figure 16: accuracy (relative error) of performance models built by
// GBRT, SVR, LinearR, LR and KNNAR on the same training data. The paper
// finds GBRT most accurate (< 15% average error).
#include <cmath>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "math/stats.h"
#include "ml/gbrt.h"
#include "ml/simple_regressors.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 16: performance-model accuracy — mean relative error "
              "on held-out configurations (80 train / 40 test, 100 GB, "
              "x86)");

  TablePrinter tp({"application", "GBRT", "SVR", "LinearR", "LR", "KNNAR"});
  std::vector<double> avg(5, 0.0);
  for (const std::string& app_name : bench::AppNames()) {
    const auto app = harness::MakeApp(app_name);
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1700);
    sparksim::ConfigSpace space(sim.cluster());
    Rng rng(1701);

    const int n_train = 80;
    const int n_test = 40;
    math::Matrix x_train(n_train, sparksim::kNumParams);
    math::Vector y_train(n_train);
    math::Matrix x_test(n_test, sparksim::kNumParams);
    std::vector<double> y_test(n_test);
    for (int i = 0; i < n_train; ++i) {
      const auto conf = space.RandomValid(&rng);
      x_train.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
      y_train[static_cast<size_t>(i)] =
          std::log(sim.RunApp(app, conf, 100.0).total_seconds);
    }
    for (int i = 0; i < n_test; ++i) {
      const auto conf = space.RandomValid(&rng);
      x_test.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
      y_test[static_cast<size_t>(i)] =
          sim.RunApp(app, conf, 100.0).total_seconds;
    }

    std::vector<std::unique_ptr<ml::Regressor>> models;
    models.push_back(std::make_unique<ml::Gbrt>());
    models.push_back(std::make_unique<ml::SvrRegressor>());
    models.push_back(std::make_unique<ml::LinearRegression>());
    models.push_back(std::make_unique<ml::LogisticRegression>());
    models.push_back(std::make_unique<ml::KnnRegressor>());

    std::vector<std::string> row = {app_name};
    for (size_t m = 0; m < models.size(); ++m) {
      double err = 1.0;
      if (models[m]->Fit(x_train, y_train).ok()) {
        double sum = 0.0;
        for (int i = 0; i < n_test; ++i) {
          const double pred =
              std::exp(models[m]->Predict(x_test.Row(static_cast<size_t>(i))));
          sum += std::fabs(pred - y_test[static_cast<size_t>(i)]) /
                 y_test[static_cast<size_t>(i)];
        }
        err = sum / n_test;
      }
      avg[m] += err / 5.0;
      row.push_back(bench::Num(err * 100.0, 1) + "%");
    }
    tp.AddRow(row);
  }
  tp.AddRow({"average", bench::Num(avg[0] * 100, 1) + "%",
             bench::Num(avg[1] * 100, 1) + "%",
             bench::Num(avg[2] * 100, 1) + "%",
             bench::Num(avg[3] * 100, 1) + "%",
             bench::Num(avg[4] * 100, 1) + "%"});
  tp.Print(std::cout);
  std::cout << "\nPaper: GBRT is the most accurate model (< 15% average "
               "error), which is why Figure 17 compares IICP against "
               "GBRT-derived importance.\n";
  return 0;
}
