// Figure 12: optimization-time reduction of LOCAT over the SOTA tuners on
// the eight-node x86 cluster (300 GB inputs).
#include <iostream>

#include "bench/bench_util.h"

int main() {
  locat::PrintBanner(std::cout,
                     "Figure 12: optimization-time reduction vs SOTA "
                     "(x86 cluster, 300 GB)");
  locat::bench::PrintOptTimeComparison(
      "x86",
      "Paper averages (x86): Tuneful 6.4x, DAC 6.3x, GBO-RL 4.0x, QTune "
      "9.2x.");
  return 0;
}
