// Ablation (Section 3.4's motivation): the DAGP models t = f(conf, ds),
// so one LOCAT instance adapts to data-size changes online; CherryPick's
// plain GP has no data-size input and must re-tune from scratch at every
// size. We tune TPC-H across 100..500 GB with both and compare the
// cumulative overhead and the tuned runtimes.
#include <iostream>

#include "bench/bench_util.h"
#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "tuners/baselines.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Ablation: DAGP (LOCAT online) vs CherryPick-style plain BO "
              "across data sizes (TPC-H, x86)");

  const auto app = workloads::TpcH();
  const std::vector<double> sizes = {100, 200, 300, 400, 500};

  sparksim::ClusterSimulator locat_sim(sparksim::X86Cluster(), 3001);
  core::TuningSession locat_session(&locat_sim, app);
  core::LocatTuner::Options lopts;
  lopts.seed = 5;
  core::LocatTuner locat(lopts);

  sparksim::ClusterSimulator cp_sim(sparksim::X86Cluster(), 3001);
  core::TuningSession cp_session(&cp_sim, app);

  TablePrinter tp({"datasize", "LOCAT overhead (h)", "LOCAT tuned (s)",
                   "CherryPick overhead (h)", "CherryPick tuned (s)"});
  double locat_total = 0.0;
  double cp_total = 0.0;
  for (double ds : sizes) {
    const auto lr = locat.Tune(&locat_session, ds);
    locat_total += lr.optimization_seconds;
    const double locat_tuned =
        locat_session.MeasureFinal(lr.best_conf, ds).total_seconds;

    tuners::CherryPickTuner cp;  // fresh instance: no cross-size memory
    const auto cr = cp.Tune(&cp_session, ds);
    cp_total += cr.optimization_seconds;
    const double cp_tuned =
        cp_session.MeasureFinal(cr.best_conf, ds).total_seconds;

    tp.AddRow({bench::Num(ds, 0) + " GB",
               bench::Num(lr.optimization_seconds / 3600.0, 1),
               bench::Num(locat_tuned, 0),
               bench::Num(cr.optimization_seconds / 3600.0, 1),
               bench::Num(cp_tuned, 0)});
  }
  tp.Print(std::cout);
  std::cout << "\nCumulative overhead over the five sizes: LOCAT "
            << bench::Num(locat_total / 3600.0, 1) << " h vs CherryPick "
            << bench::Num(cp_total / 3600.0, 1) << " h ("
            << bench::Num(cp_total / locat_total, 1) << "x).\n"
            << "After the cold start, each data-size change costs LOCAT "
               "only a handful of RQA runs because the GP carries the "
               "(conf, ds) structure over — exactly the capability the "
               "paper says CherryPick lacks.\n";
  return 0;
}
