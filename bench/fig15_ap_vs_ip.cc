// Figure 15: TPC-DS tuned by LOCAT with all 38 parameters (AP) vs with
// the IICP-selected important parameters (IP). The paper finds IP-tuned
// performance ~1.8x better on average: tuning unimportant parameters
// dilutes the search.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 15: LOCAT tuning all parameters (AP) vs important "
              "parameters (IP) on TPC-DS (x86)");

  TablePrinter tp({"datasize", "AP-tuned (s)", "IP-tuned (s)", "AP / IP"});
  double ratio_sum = 0.0;
  int count = 0;
  for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    harness::CellSpec spec;
    spec.app = "TPC-DS";
    spec.cluster = "x86";
    spec.datasize_gb = ds;
    spec.tuner = "LOCAT-AP";
    const double ap = bench::Runner().Run(spec).best_app_seconds;
    spec.tuner = "LOCAT";
    const double ip = bench::Runner().Run(spec).best_app_seconds;
    ratio_sum += ap / ip;
    ++count;
    tp.AddRow({bench::Num(ds, 0) + " GB", bench::Num(ap, 0),
               bench::Num(ip, 0), bench::Num(ap / ip, 2)});
  }
  tp.AddRow({"average", "", "", bench::Num(ratio_sum / count, 2)});
  tp.Print(std::cout);
  bench::Runner().Save();
  std::cout << "\nPaper: IP-tuned performance is 1.8x higher than AP-tuned "
               "on average.\n";
  return 0;
}
