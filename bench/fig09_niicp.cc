// Figure 9: the number of identified important configuration parameters
// as a function of N_IICP; the paper finds it stabilizes at 20 samples.
#include <iostream>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 9: important-parameter count vs N_IICP (TPC-DS, "
              "100 GB, x86; averaged over 3 sample sets)");

  TablePrinter tp({"N_IICP", "CPS-selected (avg)", "CPE-extracted (avg)"});
  const auto app = workloads::TpcDs();

  for (int n = 5; n <= 50; n += 5) {
    double cps_sum = 0.0;
    double cpe_sum = 0.0;
    int ok = 0;
    for (uint64_t rep = 0; rep < 3; ++rep) {
      sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1200 + rep);
      sparksim::ConfigSpace space(sim.cluster());
      Rng rng(1300 + rep);
      math::Matrix confs(static_cast<size_t>(n), sparksim::kNumParams);
      std::vector<double> times(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        const auto conf = space.RandomValid(&rng);
        confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
        times[static_cast<size_t>(i)] =
            sim.RunApp(app, conf, 100.0).total_seconds;
      }
      const auto iicp = core::Iicp::Run(confs, times);
      if (!iicp.ok()) continue;
      cps_sum += static_cast<double>(iicp->selected_params().size());
      cpe_sum += iicp->latent_dim();
      ++ok;
    }
    if (ok == 0) continue;
    tp.AddRow({std::to_string(n), bench::Num(cps_sum / ok, 1),
               bench::Num(cpe_sum / ok, 1)});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: the identified set stabilizes for N_IICP >= 20, so "
               "N_IICP = 20 (< N_QCSA = 30; both reuse BO executions).\n";
  return 0;
}
