// Figure 19: JVM GC time of the tuned configurations for TPC-DS (a) and
// HiBench Join (b) as the input size grows. The paper attributes much of
// LOCAT's speedup to better memory-parameter settings, visible as lower
// GC time that also grows more slowly with the data size.
#include <iostream>

#include "bench/bench_util.h"

namespace {

void GcTable(const std::string& app) {
  using namespace locat;
  TablePrinter tp({"datasize", "LOCAT", "Tuneful", "DAC", "GBO-RL", "QTune"});
  for (double ds : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    std::vector<std::string> row = {bench::Num(ds, 0) + " GB"};
    for (const std::string& tuner :
         {std::string("LOCAT"), std::string("Tuneful"), std::string("DAC"),
          std::string("GBO-RL"), std::string("QTune")}) {
      harness::CellSpec spec;
      spec.tuner = tuner;
      spec.app = app;
      spec.cluster = "x86";
      spec.datasize_gb = ds;
      row.push_back(bench::Num(bench::Runner().Run(spec).gc_seconds, 1));
    }
    tp.AddRow(row);
  }
  tp.Print(std::cout);
}

}  // namespace

int main() {
  locat::PrintBanner(std::cout,
                     "Figure 19 (a): GC time of tuned TPC-DS (x86, "
                     "seconds)");
  GcTable("TPC-DS");
  locat::PrintBanner(std::cout,
                     "Figure 19 (b): GC time of tuned Join (x86, seconds)");
  GcTable("Join");
  locat::bench::Runner().Save();
  std::cout << "\nPaper: LOCAT's GC time is the lowest and grows the most "
               "slowly with the input size, because it sets the memory "
               "parameters jointly.\n";
  return 0;
}
