// BO hot-path speedup bench: the seed's sequential surrogate refit +
// per-candidate acquisition scoring vs the cached/batched/pooled path.
//
// For each training-set size n it times one EI-MCMC Fit plus one
// 500-candidate acquisition sweep, twice:
//   legacy: Options::fast_path = false (full kernel rebuild per MCMC
//           density evaluation, full refit per ensemble member) and one
//           AcquisitionValue call per candidate;
//   fast:   Options::fast_path = true (GpKernelCache + factorization
//           reuse + pooled ensemble fits) and one AcquisitionValueBatch
//           call for the whole pool.
// Wall times are minima over `reps` repetitions (hand-rolled
// steady_clock timing; google-benchmark cannot time a two-phase
// fit+score pair as one unit), written to BENCH_bo_hotpath.json.
//
// Both paths sample the same hyperparameter posterior; the headline
// "speedup" column is (legacy fit + legacy score) / (fast fit + fast
// score). The acceptance bar is >= 3x at n = 120.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "math/matrix.h"
#include "ml/ei_mcmc.h"

namespace {

using namespace locat;
using Clock = std::chrono::steady_clock;

constexpr int kDim = 10;        // ~ IICP latent dims + data size
constexpr int kCandidates = 500;
constexpr int kReps = 3;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Synthetic tuning-shaped dataset: smooth multimodal target over [0,1]^d
/// with mild observation noise, same generator for every rep.
void MakeDataset(int n, math::Matrix* x, math::Vector* y) {
  Rng rng(1234);
  *x = math::Matrix(static_cast<size_t>(n), kDim);
  *y = math::Vector(static_cast<size_t>(n));
  for (size_t i = 0; i < static_cast<size_t>(n); ++i) {
    double s = 0.0;
    for (size_t j = 0; j < kDim; ++j) {
      const double v = rng.NextDouble();
      (*x)(i, j) = v;
      s += std::sin(4.0 * v + static_cast<double>(j)) / (1.0 + j);
    }
    (*y)[i] = 100.0 + 20.0 * s + 0.5 * rng.NextGaussian();
  }
}

math::Matrix MakeCandidates() {
  Rng rng(99);
  math::Matrix xs(kCandidates, kDim);
  for (size_t i = 0; i < kCandidates; ++i) {
    for (size_t j = 0; j < kDim; ++j) xs(i, j) = rng.NextDouble();
  }
  return xs;
}

struct CaseResult {
  int n = 0;
  double legacy_fit_s = 0.0;
  double legacy_score_s = 0.0;
  double fast_fit_s = 0.0;
  double fast_score_s = 0.0;
  double speedup() const {
    return (legacy_fit_s + legacy_score_s) / (fast_fit_s + fast_score_s);
  }
};

CaseResult RunCase(int n) {
  math::Matrix x;
  math::Vector y;
  MakeDataset(n, &x, &y);
  const math::Matrix xs = MakeCandidates();

  CaseResult out;
  out.n = n;
  out.legacy_fit_s = out.legacy_score_s = out.fast_fit_s = out.fast_score_s =
      std::numeric_limits<double>::infinity();

  for (int rep = 0; rep < kReps; ++rep) {
    // Seed path: sequential density evaluations and refits, one
    // acquisition call per candidate.
    {
      ml::EiMcmc::Options opts;
      opts.fast_path = false;
      ml::EiMcmc model(opts);
      Rng rng(7);
      auto t0 = Clock::now();
      if (!model.Fit(x, y, &rng).ok()) std::abort();
      auto t1 = Clock::now();
      double sink = 0.0;
      for (size_t i = 0; i < kCandidates; ++i) {
        sink += model.AcquisitionValue(xs.Row(i));
      }
      auto t2 = Clock::now();
      if (!(sink >= 0.0)) std::abort();  // keep the loop observable
      out.legacy_fit_s = std::min(out.legacy_fit_s, Seconds(t0, t1));
      out.legacy_score_s = std::min(out.legacy_score_s, Seconds(t1, t2));
    }
    // Cached + batched + pooled path.
    {
      ml::EiMcmc::Options opts;
      opts.fast_path = true;
      ml::EiMcmc model(opts);
      Rng rng(7);
      auto t0 = Clock::now();
      if (!model.Fit(x, y, &rng).ok()) std::abort();
      auto t1 = Clock::now();
      const math::Vector eis = model.AcquisitionValueBatch(xs);
      auto t2 = Clock::now();
      if (!(eis.Sum() >= 0.0)) std::abort();
      out.fast_fit_s = std::min(out.fast_fit_s, Seconds(t0, t1));
      out.fast_score_s = std::min(out.fast_score_s, Seconds(t1, t2));
    }
  }
  return out;
}

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(6);
  os << "{\n"
     << "  \"benchmark\": \"bo_hotpath\",\n"
     << "  \"dim\": " << kDim << ",\n"
     << "  \"candidates\": " << kCandidates << ",\n"
     << "  \"threads\": " << common::ThreadPool::Global()->num_threads()
     << ",\n"
     << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"n\": " << c.n
       << ", \"legacy_fit_s\": " << c.legacy_fit_s
       << ", \"legacy_score_s\": " << c.legacy_score_s
       << ", \"fast_fit_s\": " << c.fast_fit_s
       << ", \"fast_score_s\": " << c.fast_score_s
       << ", \"speedup\": " << c.speedup() << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_bo_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      common::ThreadPool::SetGlobalThreads(std::atoi(argv[++i]));
    }
  }

  std::vector<CaseResult> cases;
  TablePrinter tp({"n", "legacy fit (s)", "legacy score (s)", "fast fit (s)",
                   "fast score (s)", "speedup"});
  for (int n : {20, 60, 120}) {
    const CaseResult c = RunCase(n);
    cases.push_back(c);
    tp.AddRow({std::to_string(c.n), TablePrinter::Num(c.legacy_fit_s, 4),
               TablePrinter::Num(c.legacy_score_s, 4),
               TablePrinter::Num(c.fast_fit_s, 4),
               TablePrinter::Num(c.fast_score_s, 4),
               TablePrinter::Num(c.speedup(), 2) + "x"});
  }
  tp.Print(std::cout);
  WriteJson(out_path, cases);
  return 0;
}
