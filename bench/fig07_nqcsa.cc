// Figure 7: how the observed CV changes with the number of QCSA samples
// N_QCSA; the paper picks 30 because the curve flattens there.
#include <iostream>

#include "bench/bench_util.h"
#include "core/qcsa.h"
#include "math/stats.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

// Mean per-query CV after the first n of the collected runs.
double MeanCvAfter(const std::vector<std::vector<double>>& times, int n) {
  std::vector<std::vector<double>> prefix(times.size());
  for (size_t q = 0; q < times.size(); ++q) {
    prefix[q].assign(times[q].begin(), times[q].begin() + n);
  }
  const auto qcsa = locat::core::AnalyzeQuerySensitivity(prefix);
  if (!qcsa.ok()) return 0.0;
  return locat::math::Mean(qcsa->cv);
}

}  // namespace

int main() {
  using namespace locat;
  PrintBanner(std::cout,
              "Figure 7: CV vs number of QCSA samples (100 GB, x86)");

  TablePrinter tp({"N_QCSA", "mean CV (TPC-DS)", "mean CV (TPC-H)"});
  std::vector<std::vector<std::vector<double>>> all_times;
  for (const char* app_name : {"TPC-DS", "TPC-H"}) {
    const auto app = harness::MakeApp(app_name);
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1101);
    sparksim::ConfigSpace space(sim.cluster());
    Rng rng(1102);
    std::vector<std::vector<double>> times(
        static_cast<size_t>(app.num_queries()));
    for (int run = 0; run < 50; ++run) {
      const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
      for (size_t q = 0; q < result.per_query.size(); ++q) {
        times[q].push_back(result.per_query[q].exec_seconds);
      }
    }
    all_times.push_back(std::move(times));
  }
  for (int n = 5; n <= 50; n += 5) {
    tp.AddRow({std::to_string(n), bench::Num(MeanCvAfter(all_times[0], n), 3),
               bench::Num(MeanCvAfter(all_times[1], n), 3)});
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: the CV stops growing at ~30 samples, so N_QCSA = "
               "30.\n";
  return 0;
}
