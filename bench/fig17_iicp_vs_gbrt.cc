// Figure 17: IICP vs GBRT for identifying important parameters. Both
// select a set of "important" parameters from the same 20 samples; we
// then run configurations that vary ONLY those parameters (others at the
// Spark defaults) and report the standard deviation of execution times —
// higher SD means the identified parameters matter more.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/bench_util.h"
#include "core/iicp.h"
#include "math/stats.h"
#include "ml/gbrt.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

// SD of runtimes when varying only `dims` (others pinned to defaults).
double SdVaryingDims(const std::string& app_name, const std::vector<int>& dims,
                     int runs, uint64_t seed) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), seed);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(seed + 1);
  // Vary around a mid-range base — the regime the 20 training samples
  // came from. (Varying around the stock defaults probes a different,
  // far-from-sampled corner of the space and makes the comparison
  // meaningless for both selectors.)
  const math::Vector base =
      space.ToUnit(space.Repair(space.FromUnit(
          math::Vector(sparksim::kNumParams, 0.5))));
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    math::Vector unit = base;
    for (int d : dims) unit[static_cast<size_t>(d)] = rng.NextDouble();
    times.push_back(
        sim.RunApp(app, space.Repair(space.FromUnit(unit)), 100.0)
            .total_seconds);
  }
  return math::StdDev(times);
}

struct Selections {
  std::vector<int> iicp;
  std::vector<int> gbrt;
};

Selections SelectImportant(const std::string& app_name) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1800);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(1801);
  const int n = 20;
  math::Matrix confs(n, sparksim::kNumParams);
  math::Vector times(n);
  for (int i = 0; i < n; ++i) {
    const auto conf = space.RandomValid(&rng);
    confs.SetRow(static_cast<size_t>(i), space.ToUnit(conf));
    times[static_cast<size_t>(i)] = sim.RunApp(app, conf, 100.0).total_seconds;
  }

  Selections out;
  const auto iicp = core::Iicp::Run(confs, times.data());
  if (iicp.ok()) out.iicp = iicp->selected_params();

  ml::Gbrt gbrt;
  if (gbrt.Fit(confs, times).ok()) {
    const auto importances = gbrt.FeatureImportances();
    std::vector<int> order(sparksim::kNumParams);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return importances[static_cast<size_t>(a)] >
             importances[static_cast<size_t>(b)];
    });
    const size_t k = std::max<size_t>(out.iicp.size(), 5);
    out.gbrt.assign(order.begin(),
                    order.begin() + static_cast<long>(
                                        std::min<size_t>(k, order.size())));
  }
  return out;
}

}  // namespace

int main() {
  PrintBanner(std::cout,
              "Figure 17: SD of execution times under parameters chosen by "
              "IICP vs by GBRT importance (100 GB, x86)");

  TablePrinter tp({"application", "runs", "IICP SD (s)", "GBRT SD (s)"});
  for (const char* app_name : {"TPC-DS", "Join"}) {
    const Selections sel = SelectImportant(app_name);
    for (int runs : {5, 10, 15, 20, 25, 30}) {
      const double sd_iicp =
          SdVaryingDims(app_name, sel.iicp, runs, 1900);
      const double sd_gbrt =
          SdVaryingDims(app_name, sel.gbrt, runs, 1900);
      tp.AddRow({app_name, std::to_string(runs), locat::bench::Num(sd_iicp, 1),
                 locat::bench::Num(sd_gbrt, 1)});
    }
  }
  tp.Print(std::cout);
  std::cout << "\nPaper: the SD under IICP-selected parameters is "
               "significantly higher than under GBRT-selected ones.\n"
               "NOTE (reproduction): on this simulator the comparison "
               "typically *inverts* — at 20 samples the Spearman filter "
               "underrates executor.memory and sql.shuffle.partitions "
               "because their application-level effect is non-monotone "
               "(more executor memory also means fewer executors under the "
               "cluster-capacity constraint), while GBRT's split gains "
               "capture the cliff directly. See EXPERIMENTS.md, Figure 17, "
               "for the discussion.\n";
  return 0;
}
